package rep

import (
	"errors"
	"fmt"

	"repro/internal/client"
	"repro/internal/soap"
	"repro/internal/typemap"
)

// AutoStore implements the optimal configuration of Section 6: at run
// time it classifies each result and delegates to the best applicable
// representation:
//
//	0) stream-accepting consumer  → raw response replay (pre-empts all)
//	a) immutable types            → pass by reference
//	b) Cloner implementations     → copy by clone (generated classes)
//	c) bean-type object graphs    → copy by reflection
//	d) gob-encodable graphs       → gob serialization
//	e) everything else            → SAX event sequence
//
// The paper's list omits clone (its WSDL compiler did not yet emit
// clone methods) but argues it should; ours does, so clone slots in
// right after immutability. Classification is cached per type by the
// registry, so steady-state dispatch is two map lookups.
//
// When the classified representation declines a result with
// ErrNotApplicable (the registry's static flags are a prediction, not
// a guarantee — e.g. a type flagged gob-safe whose concrete value
// smuggles in an unencodable interface member), Store falls through to
// the next candidate in the chain rather than failing the fill, ending
// at the XML message store which accepts anything with a captured
// response. Other errors abort immediately, wrapped with the name of
// the representation that produced them.
type AutoStore struct {
	reg *typemap.Registry
	// chain is the Section 6 preference order (prefixed by the raw
	// streaming representation for stream-accepting invocations);
	// classify picks a start index and Store cascades from there on
	// ErrNotApplicable.
	chain [7]ValueStore
}

// Indexes into AutoStore.chain. Raw replay leads: when the consumer
// accepts a byte stream, replaying the captured envelope beats every
// object representation (no copy-out at all); it predates the Section
// 6 list, which only considered object results. The rest is Section 6
// preference order.
const (
	autoRaw = iota
	autoRef
	autoClone
	autoReflect
	autoGob
	autoSAX
	autoXML
)

var _ ValueStore = (*AutoStore)(nil)

// NewAutoStore returns the run-time classifying representation.
func NewAutoStore(reg *typemap.Registry, codec *soap.Codec) *AutoStore {
	return &AutoStore{
		reg: reg,
		chain: [7]ValueStore{
			autoRaw:     NewRawStreamStore(),
			autoRef:     NewRefStore(reg, false),
			autoClone:   NewCloneCopyStore(),
			autoReflect: NewReflectCopyStore(reg),
			autoGob:     NewGobStore(reg),
			autoSAX:     NewSAXEventsStore(codec),
			autoXML:     NewXMLMessageStore(codec),
		},
	}
}

// Name implements ValueStore.
func (s *AutoStore) Name() string { return "Auto (optimal configuration)" }

// Store implements ValueStore. The payload is wrapped so Load knows
// which representation produced it. Candidates that return
// ErrNotApplicable are skipped in favor of the next representation in
// the Section 6 chain; any other error aborts, wrapped with the
// representation's name.
func (s *AutoStore) Store(ictx *client.Context) (any, int, error) {
	var notApplicable error
	for i := s.classify(ictx); i < len(s.chain); i++ {
		chosen := s.chain[i]
		payload, size, err := chosen.Store(ictx)
		if err == nil {
			//lint:ignore aliascopy chosen is one of s's member stores picked by classification; it only reads ictx and is not data reachable from it
			return &autoPayload{store: chosen, payload: payload}, size, nil
		}
		if errors.Is(err, ErrNotApplicable) {
			notApplicable = err
			continue
		}
		return nil, 0, fmt.Errorf("rep: auto store: %s: %w", chosen.Name(), err)
	}
	// Even the XML fallback declined — nothing was captured to cache.
	return nil, 0, fmt.Errorf("rep: auto store: no applicable representation: %w", notApplicable)
}

// Load implements ValueStore.
func (s *AutoStore) Load(payload any) (any, error) {
	ap, ok := payload.(*autoPayload)
	if !ok {
		return nil, fmt.Errorf("rep: auto store: payload is %T", payload)
	}
	return ap.store.Load(ap.payload)
}

// Classify reports which representation AutoStore would choose for the
// invocation, for diagnostics and the representation example binary.
// It names the starting candidate; Store may land on a later chain
// entry if that candidate declines the concrete value.
func (s *AutoStore) Classify(ictx *client.Context) string {
	return s.chain[s.classify(ictx)].Name()
}

// classify picks the chain start index per the Section 6 decision
// list, after the one pre-Section 6 case: a stream-accepting consumer
// with a captured envelope gets raw replay.
func (s *AutoStore) classify(ictx *client.Context) int {
	if ictx.AcceptStream && len(ictx.ResponseXML) > 0 {
		return autoRaw
	}
	r := ictx.Result
	if r == nil {
		return autoRef // nil is trivially immutable
	}
	info := s.reg.InfoFor(r)
	switch {
	case info.IsImmutable:
		return autoRef
	case info.IsCloneable:
		return autoClone
	case info.IsBean:
		return autoReflect
	case info.IsGobSafe:
		return autoGob
	case len(ictx.ResponseEvents) > 0 || len(ictx.ResponseXML) > 0:
		return autoSAX
	default:
		return autoXML
	}
}

// autoPayload pairs a payload with the representation that created it.
type autoPayload struct {
	store   ValueStore
	payload any
}
