package rep

import (
	"fmt"

	"repro/internal/binser"
	"repro/internal/client"
	"repro/internal/typemap"
)

// BinserKey generates the cache key from the binary-serialized form of
// the parameter values (Section 4.1.2-A): the working analog of the
// paper's Java-serialization key. Limitation: every parameter must be
// serializable (registered bean types or primitives).
//
// GobKey is the encoding/gob variant of the same idea; it is retained
// for the ablation benchmarks, which show gob's per-message overhead
// inverting the paper's ordering at these message sizes.
type BinserKey struct {
	codec *binser.Codec
}

var (
	_ KeyGenerator = (*BinserKey)(nil)
	_ KeyAppender  = (*BinserKey)(nil)
)

// NewBinserKey returns the binary-serialization key strategy.
func NewBinserKey(reg *typemap.Registry) *BinserKey {
	return &BinserKey{codec: binser.NewCodec(reg)}
}

// Name implements KeyGenerator.
func (k *BinserKey) Name() string { return "Binary serialization" }

// Key implements KeyGenerator.
func (k *BinserKey) Key(ictx *client.Context) (string, error) {
	return keyString(k, ictx)
}

// AppendKey implements KeyAppender.
func (k *BinserKey) AppendKey(dst []byte, ictx *client.Context) ([]byte, error) {
	dst = append(dst, ictx.Endpoint...)
	dst = append(dst, 0)
	dst = append(dst, ictx.Operation...)
	var err error
	for _, p := range ictx.Params {
		dst = append(dst, 0)
		dst = append(dst, p.Name...)
		dst = append(dst, '=')
		dst, err = k.codec.Append(dst, p.Value)
		if err != nil {
			return nil, fmt.Errorf("rep: binser key: param %s: %w", p.Name, err)
		}
	}
	return dst, nil
}

// BinserStore caches the binary-serialized form of the application
// object (Section 4.2.3-A analog). Load decodes a fresh object graph;
// the byte payload is immune to client mutations by construction.
// Limitation: the object graph must be serializable (registered bean
// types, primitives, byte arrays).
type BinserStore struct {
	codec *binser.Codec
}

var _ ValueStore = (*BinserStore)(nil)

// NewBinserStore returns the binary-serialization representation.
func NewBinserStore(reg *typemap.Registry) *BinserStore {
	return &BinserStore{codec: binser.NewCodec(reg)}
}

// Name implements ValueStore.
func (s *BinserStore) Name() string { return "Binary serialization" }

// Store implements ValueStore.
func (s *BinserStore) Store(ictx *client.Context) (any, int, error) {
	data, err := s.codec.Marshal(ictx.Result)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrNotApplicable, err)
	}
	return data, len(data), nil
}

// Load implements ValueStore.
func (s *BinserStore) Load(payload any) (any, error) {
	data, ok := payload.([]byte)
	if !ok {
		return nil, fmt.Errorf("rep: binser store: payload is %T", payload)
	}
	v, err := s.codec.Unmarshal(data)
	if err != nil {
		return nil, fmt.Errorf("rep: binser store: %w", err)
	}
	return v, nil
}
