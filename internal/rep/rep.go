// Package rep is the data-representation layer of the caching
// middleware: the cache key strategies (Table 2) and cache value
// representations (Table 3) the paper selects among, promoted to a
// first-class subsystem that every other layer composes.
//
// Three pieces:
//
//   - The concrete representations: KeyGenerator implementations
//     (XML message, binary serialization, string concatenation, gob)
//     and ValueStore implementations (XML message, SAX events — naive
//     and compact — DOM tree, gob, binary serialization, reflection
//     copy, clone copy, pass by reference), each carrying its paper
//     limitation.
//   - Registry: the name → representation catalog. Each registered
//     representation pairs its store with its Table 2/3 row, an
//     applicability predicate, and the label its stage latencies are
//     recorded under in the observability layer. core, the server-side
//     response cache, and the cmd/* binaries resolve representations
//     by name here instead of constructing concrete stores.
//   - Selection: AutoStore is the paper's static Section 6 decision
//     list; AdaptiveSelector closes the loop the paper leaves open by
//     scoring each applicable representation from measured Store/Load
//     latency and payload size (EWMA samples, 1-in-N probing) and
//     switching per-(operation, result type) choices at run time, with
//     the static classifier as cold-start prior and permanent
//     fallback.
//
// The package was extracted from internal/core; core re-exports thin
// deprecated aliases so existing call sites keep compiling. New code
// should import this package directly.
package rep

import "sync"

// keyBufPool recycles the scratch buffers append-style key generation
// writes into, so materializing a key string costs exactly one
// allocation (the string itself). The cache core keeps its own pool
// for digest-only lookups that never materialize the string.
var keyBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}
