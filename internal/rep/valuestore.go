package rep

import (
	"errors"
	"fmt"

	"repro/internal/client"
	"repro/internal/deepcopy"
	"repro/internal/dom"
	"repro/internal/memsize"
	"repro/internal/sax"
	"repro/internal/soap"
	"repro/internal/typemap"
)

// ValueStore is a cache value representation (Table 3). Store converts
// a completed invocation into a payload held in the cache; Load
// materializes a payload back into an application object for the
// client. The pair divides the cost of a cache hit: cheap Load is the
// whole game (Table 7).
type ValueStore interface {
	// Name identifies the representation in reports (Table 7 rows).
	Name() string
	// Store builds the payload and reports its estimated size in
	// bytes. It returns an error when the representation's limitation
	// excludes this result (e.g. clone copy on a non-Cloner).
	Store(ictx *client.Context) (payload any, size int, err error)
	// Load materializes an application object from a payload. Each
	// call must honor call-by-copy semantics: the returned object must
	// be safe for the client to mutate (unless the store is the
	// explicit pass-by-reference store).
	Load(payload any) (any, error)
}

// ErrNotApplicable reports that a value store cannot represent a given
// result; AutoStore and callers use it to fall through to the next
// candidate.
var ErrNotApplicable = errors.New("rep: representation not applicable to this result type")

// XMLMessageStore caches the response XML message itself (Section
// 4.2.1). Load performs a full parse and deserialization; no
// limitation on object types, highest hit cost.
type XMLMessageStore struct {
	codec *soap.Codec
}

var _ ValueStore = (*XMLMessageStore)(nil)

// NewXMLMessageStore returns the XML-message representation.
func NewXMLMessageStore(codec *soap.Codec) *XMLMessageStore {
	return &XMLMessageStore{codec: codec}
}

// Name implements ValueStore.
func (s *XMLMessageStore) Name() string { return "XML message" }

// Store implements ValueStore.
func (s *XMLMessageStore) Store(ictx *client.Context) (any, int, error) {
	if len(ictx.ResponseXML) == 0 {
		return nil, 0, fmt.Errorf("rep: xml store: %w: invocation captured no response XML", ErrNotApplicable)
	}
	// Copy: the context's buffer belongs to the transport.
	doc := make([]byte, len(ictx.ResponseXML))
	copy(doc, ictx.ResponseXML)
	return doc, len(doc), nil
}

// Load implements ValueStore.
func (s *XMLMessageStore) Load(payload any) (any, error) {
	doc, ok := payload.([]byte)
	if !ok {
		return nil, fmt.Errorf("rep: xml store: payload is %T", payload)
	}
	msg, err := s.codec.DecodeEnvelope(doc)
	if err != nil {
		return nil, err
	}
	if msg.Fault != nil {
		return nil, msg.Fault
	}
	return msg.Result(), nil
}

// SAXEventsStore caches the recorded SAX event sequence of the response
// (Section 4.2.2, Table 4). Load replays the events through the
// deserializer: no tokenization, fresh objects every hit, no type
// limitation. Requires the client option RecordEvents.
type SAXEventsStore struct {
	codec *soap.Codec
}

var _ ValueStore = (*SAXEventsStore)(nil)

// NewSAXEventsStore returns the SAX-events representation.
func NewSAXEventsStore(codec *soap.Codec) *SAXEventsStore {
	return &SAXEventsStore{codec: codec}
}

// Name implements ValueStore.
func (s *SAXEventsStore) Name() string { return "SAX events sequence" }

// Store implements ValueStore.
func (s *SAXEventsStore) Store(ictx *client.Context) (any, int, error) {
	events := ictx.ResponseEvents
	if len(events) == 0 {
		if len(ictx.ResponseXML) == 0 {
			return nil, 0, fmt.Errorf("rep: sax store: %w: invocation captured neither events nor XML", ErrNotApplicable)
		}
		// The client did not record during the response parse; record
		// now from the raw message (one extra parse on the miss path).
		var err error
		events, err = sax.Record(ictx.ResponseXML)
		if err != nil {
			return nil, 0, fmt.Errorf("rep: sax store: %w", err)
		}
	}
	seq := make([]sax.Event, len(events))
	copy(seq, events)
	return seq, sax.SequenceMemSize(seq), nil
}

// Load implements ValueStore.
func (s *SAXEventsStore) Load(payload any) (any, error) {
	events, ok := payload.([]sax.Event)
	if !ok {
		return nil, fmt.Errorf("rep: sax store: payload is %T", payload)
	}
	msg, err := s.codec.DecodeEnvelopeEvents(events)
	if err != nil {
		return nil, err
	}
	if msg.Fault != nil {
		return nil, msg.Fault
	}
	return msg.Result(), nil
}

// DOMStore caches the response's DOM tree — the other post-parsing
// representation the paper names (Section 3.3: "DOM objects or SAX
// events sequences"). Load walks the tree as an event stream into the
// deserializer: like SAX replay it skips tokenization; unlike SAX
// replay the tree supports structural inspection (and is how multiref
// resolution works), at a higher memory cost.
type DOMStore struct {
	codec *soap.Codec
}

var _ ValueStore = (*DOMStore)(nil)

// NewDOMStore returns the DOM-tree representation.
func NewDOMStore(codec *soap.Codec) *DOMStore {
	return &DOMStore{codec: codec}
}

// Name implements ValueStore.
func (s *DOMStore) Name() string { return "DOM tree" }

// Store implements ValueStore.
func (s *DOMStore) Store(ictx *client.Context) (any, int, error) {
	var doc *dom.Document
	var err error
	switch {
	case len(ictx.ResponseEvents) > 0:
		doc, err = dom.FromEvents(ictx.ResponseEvents)
	case len(ictx.ResponseXML) > 0:
		doc, err = dom.Parse(ictx.ResponseXML)
	default:
		return nil, 0, fmt.Errorf("rep: dom store: %w: invocation captured neither events nor XML", ErrNotApplicable)
	}
	if err != nil {
		return nil, 0, fmt.Errorf("rep: dom store: %w", err)
	}
	return &domPayload{
		doc:      doc,
		multiRef: soap.EventsHaveHref(doc.Events()),
	}, memsize.Of(doc), nil
}

// domPayload remembers whether the tree needs multiref resolution, so
// the check is paid once at store time rather than on every hit.
type domPayload struct {
	doc      *dom.Document
	multiRef bool
}

// Load implements ValueStore.
func (s *DOMStore) Load(payload any) (any, error) {
	p, ok := payload.(*domPayload)
	if !ok {
		return nil, fmt.Errorf("rep: dom store: payload is %T", payload)
	}
	// Multiref envelopes need the structural resolution pass; plain
	// envelopes stream the tree straight into the deserializer.
	if p.multiRef {
		msg, err := s.codec.DecodeEnvelopeEvents(p.doc.Events())
		if err != nil {
			return nil, err
		}
		if msg.Fault != nil {
			return nil, msg.Fault
		}
		return msg.Result(), nil
	}
	dh := s.codec.NewDecodeHandler()
	if err := p.doc.Visit(dh.Handler()); err != nil {
		return nil, err
	}
	msg, err := dh.Message()
	if err != nil {
		return nil, err
	}
	if msg.Fault != nil {
		return nil, msg.Fault
	}
	return msg.Result(), nil
}

// CompactSAXStore is SAXEventsStore with the recorded sequence held in
// the string-interned struct-of-arrays form (sax.CompactSequence). Same
// semantics and applicability; a fraction of the memory (SOAP event
// streams are highly repetitive) for slightly more replay work. The
// BenchmarkAblationEventArena benchmark quantifies the trade.
type CompactSAXStore struct {
	codec *soap.Codec
}

var _ ValueStore = (*CompactSAXStore)(nil)

// NewCompactSAXStore returns the compact SAX-events representation.
func NewCompactSAXStore(codec *soap.Codec) *CompactSAXStore {
	return &CompactSAXStore{codec: codec}
}

// Name implements ValueStore.
func (s *CompactSAXStore) Name() string { return "SAX events (compact)" }

// Store implements ValueStore.
func (s *CompactSAXStore) Store(ictx *client.Context) (any, int, error) {
	events := ictx.ResponseEvents
	if len(events) == 0 {
		if len(ictx.ResponseXML) == 0 {
			return nil, 0, fmt.Errorf("rep: compact sax store: %w: invocation captured neither events nor XML", ErrNotApplicable)
		}
		var err error
		events, err = sax.Record(ictx.ResponseXML)
		if err != nil {
			return nil, 0, fmt.Errorf("rep: compact sax store: %w", err)
		}
	}
	seq := sax.Compact(events)
	payload := &compactSAXPayload{seq: seq, multiRef: soap.EventsHaveHref(events)}
	return payload, seq.MemSize(), nil
}

// compactSAXPayload remembers whether the stream needs the
// multi-reference resolution path at load time.
type compactSAXPayload struct {
	seq      *sax.CompactSequence
	multiRef bool
}

// Load implements ValueStore.
func (s *CompactSAXStore) Load(payload any) (any, error) {
	p, ok := payload.(*compactSAXPayload)
	if !ok {
		return nil, fmt.Errorf("rep: compact sax store: payload is %T", payload)
	}
	if p.multiRef {
		// href resolution needs a structural pass; rematerialize.
		msg, err := s.codec.DecodeEnvelopeEvents(p.seq.Events())
		if err != nil {
			return nil, err
		}
		if msg.Fault != nil {
			return nil, msg.Fault
		}
		return msg.Result(), nil
	}
	dh := s.codec.NewDecodeHandler()
	if err := p.seq.Replay(dh.Handler()); err != nil {
		return nil, err
	}
	msg, err := dh.Message()
	if err != nil {
		return nil, err
	}
	if msg.Fault != nil {
		return nil, msg.Fault
	}
	return msg.Result(), nil
}

// GobStore caches the gob-serialized form of the application object
// (Section 4.2.3-A, the Java-serialization analog). Load decodes a
// fresh object graph. Limitation: the object graph must be deeply
// gob-encodable.
type GobStore struct {
	reg *typemap.Registry
}

var _ ValueStore = (*GobStore)(nil)

// NewGobStore returns the serialization representation. reg, when
// non-nil, pre-checks encodability and yields ErrNotApplicable for
// unencodable results instead of a late gob failure.
func NewGobStore(reg *typemap.Registry) *GobStore {
	return &GobStore{reg: reg}
}

// Name implements ValueStore.
func (s *GobStore) Name() string { return "Gob serialization" }

// Store implements ValueStore.
func (s *GobStore) Store(ictx *client.Context) (any, int, error) {
	if s.reg != nil && ictx.Result != nil {
		if !s.reg.InfoFor(ictx.Result).IsGobSafe {
			return nil, 0, fmt.Errorf("%w: %T is not deeply gob-encodable", ErrNotApplicable, ictx.Result)
		}
	}
	data, err := gobEncode(ictx.Result)
	if err != nil {
		return nil, 0, fmt.Errorf("rep: gob store: %w", err)
	}
	return data, len(data), nil
}

// Load implements ValueStore.
func (s *GobStore) Load(payload any) (any, error) {
	data, ok := payload.([]byte)
	if !ok {
		return nil, fmt.Errorf("rep: gob store: payload is %T", payload)
	}
	v, err := gobDecode(data)
	if err != nil {
		return nil, fmt.Errorf("rep: gob store: %w", err)
	}
	return v, nil
}

// ReflectCopyStore caches a reflection deep copy of the application
// object (Section 4.2.3-B). Both Store and Load copy, preserving
// call-by-copy in both directions (Section 3.1). Limitation: bean-type
// object graphs (all reachable struct fields exported).
type ReflectCopyStore struct {
	reg *typemap.Registry
}

var _ ValueStore = (*ReflectCopyStore)(nil)

// NewReflectCopyStore returns the reflection-copy representation.
func NewReflectCopyStore(reg *typemap.Registry) *ReflectCopyStore {
	return &ReflectCopyStore{reg: reg}
}

// Name implements ValueStore.
func (s *ReflectCopyStore) Name() string { return "Copy by reflection" }

// Store implements ValueStore.
func (s *ReflectCopyStore) Store(ictx *client.Context) (any, int, error) {
	if s.reg != nil && ictx.Result != nil {
		if !s.reg.InfoFor(ictx.Result).IsBean {
			return nil, 0, fmt.Errorf("%w: %T is not a bean-type object", ErrNotApplicable, ictx.Result)
		}
	}
	cp, err := deepcopy.Value(ictx.Result)
	if err != nil {
		return nil, 0, fmt.Errorf("rep: reflect store: %w", err)
	}
	return cp, memsize.Of(cp), nil
}

// Load implements ValueStore.
func (s *ReflectCopyStore) Load(payload any) (any, error) {
	cp, err := deepcopy.Value(payload)
	if err != nil {
		return nil, fmt.Errorf("rep: reflect store: %w", err)
	}
	return cp, nil
}

// CloneCopyStore caches a deep copy made by the object's own CloneDeep
// method (Section 4.2.3-C): the fastest copying representation, at the
// cost of requiring generated or hand-written clone support.
type CloneCopyStore struct{}

var _ ValueStore = CloneCopyStore{}

// NewCloneCopyStore returns the clone-copy representation.
func NewCloneCopyStore() CloneCopyStore { return CloneCopyStore{} }

// Name implements ValueStore.
func (CloneCopyStore) Name() string { return "Copy by clone" }

// Store implements ValueStore.
func (CloneCopyStore) Store(ictx *client.Context) (any, int, error) {
	cl, ok := ictx.Result.(typemap.Cloner)
	if !ok {
		return nil, 0, fmt.Errorf("%w: %T does not implement Cloner", ErrNotApplicable, ictx.Result)
	}
	cp := cl.CloneDeep()
	return cp, memsize.Of(cp), nil
}

// Load implements ValueStore.
func (CloneCopyStore) Load(payload any) (any, error) {
	cl, ok := payload.(typemap.Cloner)
	if !ok {
		return nil, fmt.Errorf("rep: clone store: payload %T lost its Cloner", payload)
	}
	return cl.CloneDeep(), nil
}

// RefStore caches the reference itself and returns it on every hit
// (Section 4.2.4). Zero copying cost; safe ONLY for immutable results
// or results the administrator asserts are read-only — a client that
// mutates a shared result corrupts the cache for every later hit.
type RefStore struct {
	reg *typemap.Registry
	// AllowMutable permits storing mutable types; set when the
	// administrator has asserted read-only use (Policy.ReadOnly).
	allowMutable bool
}

var _ ValueStore = (*RefStore)(nil)

// NewRefStore returns the pass-by-reference representation. With
// allowMutable false it accepts only deeply immutable results; the
// read-only policy flag constructs it with allowMutable true.
func NewRefStore(reg *typemap.Registry, allowMutable bool) *RefStore {
	return &RefStore{reg: reg, allowMutable: allowMutable}
}

// Name implements ValueStore.
func (s *RefStore) Name() string { return "Pass by reference" }

// Store implements ValueStore.
func (s *RefStore) Store(ictx *client.Context) (any, int, error) {
	if !s.allowMutable && ictx.Result != nil && s.reg != nil {
		if !s.reg.InfoFor(ictx.Result).IsImmutable {
			return nil, 0, fmt.Errorf("%w: %T is mutable and not declared read-only", ErrNotApplicable, ictx.Result)
		}
	}
	return ictx.Result, memsize.Of(ictx.Result), nil
}

// Load implements ValueStore.
func (s *RefStore) Load(payload any) (any, error) {
	return payload, nil
}

// AutoStore lives in auto.go.
