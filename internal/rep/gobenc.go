package rep

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
	"sync"
)

// gobRegistered tracks concrete types already passed to gob.Register,
// because gob.Register panics when a name is re-registered with a
// different type and the cache registers lazily from live values.
var gobRegistered sync.Map // reflect.Type -> struct{}

// registerGobValue makes v's concrete type known to gob. It converts
// gob.Register's panic into an error so a hostile value cannot crash
// the middleware.
func registerGobValue(v any) (err error) {
	if v == nil {
		return nil
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("gob register: %v", r)
		}
	}()
	t := reflect.TypeOf(v)
	if _, ok := gobRegistered.Load(t); ok {
		return nil
	}
	gob.Register(v)
	gobRegistered.Store(t, struct{}{})
	return nil
}

// gobEncode serializes v (concrete type included) to bytes.
func gobEncode(v any) ([]byte, error) {
	if err := registerGobValue(v); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	// Encode through a single-field wrapper so the interface header
	// (type identity) travels with the value.
	if err := enc.Encode(&gobBox{V: v}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// gobDecode reconstructs a value encoded with gobEncode.
func gobDecode(data []byte) (any, error) {
	dec := gob.NewDecoder(bytes.NewReader(data))
	var box gobBox
	if err := dec.Decode(&box); err != nil {
		return nil, err
	}
	return box.V, nil
}

// gobBox wraps an interface value so gob transmits its dynamic type.
type gobBox struct {
	V any
}
