package rep

import (
	"strings"
	"testing"

	"repro/internal/client"
	"repro/internal/soap"
)

// TestAppendStringIntegerWidths is the regression test for the uint8
// hole in appendString's integer switch: every fixed-width integer
// must render by value, not fall through to the %T error.
func TestAppendStringIntegerWidths(t *testing.T) {
	cases := []struct {
		v    any
		want string
	}{
		{int(-1), "-1"},
		{int8(-8), "-8"},
		{int16(-16), "-16"},
		{int32(-32), "-32"},
		{int64(-64), "-64"},
		{uint(1), "1"},
		{uint8(8), "8"}, // the missing case: fell to the error before
		{uint16(16), "16"},
		{uint32(32), "32"},
		{uint64(64), "64"},
		{false, "false"},
		{float32(1.5), "1.5"},
		{float64(2.5), "2.5"},
		{"s", "s"},
		{nil, "<nil>"},
		{[]byte("raw"), "raw"},
	}
	for _, tc := range cases {
		got, err := appendString(nil, tc.v)
		if err != nil {
			t.Errorf("appendString(%T %v): %v", tc.v, tc.v, err)
			continue
		}
		if string(got) != tc.want {
			t.Errorf("appendString(%T %v) = %q, want %q", tc.v, tc.v, got, tc.want)
		}
	}
}

// TestStringKeyUint8Param drives the uint8 fix end to end: a uint8
// parameter must produce a usable key, and distinct values distinct
// keys.
func TestStringKeyUint8Param(t *testing.T) {
	k := NewStringKey()
	ctx := func(v uint8) *client.Context {
		return &client.Context{
			Endpoint:  "http://test/endpoint",
			Operation: "get",
			Params:    []soap.Param{{Name: "level", Value: v}},
		}
	}
	k8, err := k.Key(ctx(8))
	if err != nil {
		t.Fatalf("uint8 param rejected: %v", err)
	}
	if !strings.Contains(k8, "level=8") {
		t.Errorf("key %q does not render the uint8 value", k8)
	}
	k9, err := k.Key(ctx(9))
	if err != nil {
		t.Fatal(err)
	}
	if k8 == k9 {
		t.Error("distinct uint8 values collided")
	}
}

// TestAppendKeyMatchesKey pins the KeyAppender fast path to the Key
// string for every generator that implements both: the digest the
// cache hashes from the scratch buffer must be the digest of the key
// string, or append-path lookups and string-path fills would miss each
// other.
func TestAppendKeyMatchesKey(t *testing.T) {
	f := newFixture(t)
	ictx := f.reqCtx("get",
		soap.Param{Name: "q", Value: "cache me"},
		soap.Param{Name: "start", Value: 0},
		soap.Param{Name: "max", Value: 10},
		soap.Param{Name: "filter", Value: true},
	)
	gens := []KeyGenerator{
		NewStringKey(),
		NewGobKey(),
		NewXMLMessageKey(f.codec),
		NewBinserKey(f.reg),
	}
	for _, g := range gens {
		ka, ok := g.(KeyAppender)
		if !ok {
			t.Errorf("%s does not implement KeyAppender", g.Name())
			continue
		}
		key, err := g.Key(ictx)
		if err != nil {
			t.Fatalf("%s Key: %v", g.Name(), err)
		}
		appended, err := ka.AppendKey(nil, ictx)
		if err != nil {
			t.Fatalf("%s AppendKey: %v", g.Name(), err)
		}
		if string(appended) != key {
			t.Errorf("%s: AppendKey diverges from Key\n append: %q\n key:    %q", g.Name(), appended, key)
		}
		// Appending onto a prefix must leave the prefix intact.
		withPrefix, err := ka.AppendKey([]byte("prefix|"), ictx)
		if err != nil {
			t.Fatal(err)
		}
		if string(withPrefix) != "prefix|"+key {
			t.Errorf("%s: AppendKey clobbered the prefix", g.Name())
		}
	}
}

// TestGobKeyPooledBufferStable verifies pooled scratch reuse does not
// make keys history-dependent: the same parameters key identically no
// matter what was encoded before (the reason the gob *encoder* is not
// pooled).
func TestGobKeyPooledBufferStable(t *testing.T) {
	k := NewGobKey()
	mk := func(q string) *client.Context {
		return &client.Context{
			Endpoint:  "http://test/endpoint",
			Operation: "get",
			Params:    []soap.Param{{Name: "q", Value: q}},
		}
	}
	first, err := k.Key(mk("a"))
	if err != nil {
		t.Fatal(err)
	}
	// Interleave other keys to churn the pool, then re-derive.
	for i := 0; i < 16; i++ {
		if _, err := k.Key(mk(strings.Repeat("x", i+1))); err != nil {
			t.Fatal(err)
		}
	}
	again, err := k.Key(mk("a"))
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Errorf("gob key unstable across pooled encodes:\n %q\n %q", first, again)
	}
}
