package rep

import (
	"time"

	"repro/internal/client"
)

// The AdaptiveSelector's WireSelector side: the same per-(operation,
// result type) cost models that pick the L1 representation also pick
// the wire representation for remote tiers, with one substitution in
// the score. The L1 score charges payload size against the byte
// budget (capacity pressure); the wire score charges it against the
// measured network cost per byte — a large payload costs transfer
// time on every remote hit, which is exactly what the EWMA fed by
// ObserveNet estimates.

var _ WireSelector = (*AdaptiveSelector)(nil)

// ObserveNet implements WireSelector: folds one remote round trip into
// the network cost model.
func (s *AdaptiveSelector) ObserveNet(d time.Duration, bytes int) {
	s.netMu.Lock()
	s.netNS.observe(float64(d.Nanoseconds()), s.cfg.Alpha)
	s.netBytes.observe(float64(bytes), s.cfg.Alpha)
	s.netMu.Unlock()
}

// netPerByte returns the estimated network nanoseconds per payload
// byte, 0 until ObserveNet has samples.
func (s *AdaptiveSelector) netPerByte() float64 {
	s.netMu.Lock()
	defer s.netMu.Unlock()
	if !s.netNS.set || s.netBytes.val < 1 {
		return 0
	}
	return s.netNS.val / s.netBytes.val
}

// StoreWire implements WireSelector. Among the wire-capable
// candidates, a class with warm measurements picks the one minimizing
// load latency plus transfer cost (bytes × net-ns-per-byte); a cold
// class walks the static preference order. Either way the chosen
// candidate must actually produce a payload for this concrete value,
// so the walk falls through on Store errors.
func (s *AdaptiveSelector) StoreWire(ictx *client.Context) (string, []byte, int, error) {
	st := s.classFor(ictx)
	specs := s.cfg.Registry.WireSpecs()

	// Rank: measured candidates first by wire score, then the static
	// order for the rest. A simple selection walk — the candidate list
	// is four entries.
	perByte := s.netPerByte()
	order := make([]rankedWire, 0, len(specs))
	st.mu.Lock()
	for _, spec := range specs {
		r := rankedWire{spec: spec}
		if m, ok := st.models[spec.Name]; ok && m.samples >= int64(s.cfg.MinSamples) {
			r.warm = true
			r.score = m.loadNS.val + m.bytes.val*perByte
		}
		order = append(order, r)
	}
	st.mu.Unlock()
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && better(order[j], order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}

	var firstErr error
	for _, r := range order {
		if !r.spec.Applicable(ictx) {
			continue
		}
		payload, _, err := r.spec.Store.Store(ictx)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		data, err := r.spec.Store.(WireStore).EncodeWire(payload)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		return r.spec.Name, data, len(data), nil
	}
	if firstErr == nil {
		firstErr = ErrNotApplicable
	}
	return "", nil, 0, firstErr
}

// rankedWire is one wire candidate with its current score.
type rankedWire struct {
	spec  *ValueSpec
	score float64
	warm  bool
}

// better orders ranked wire candidates: warm beats cold, lower score
// beats higher among warm, earlier static position wins among cold
// (the insertion sort is stable, so cold entries keep their order).
func better(a, b rankedWire) bool {
	if a.warm != b.warm {
		return a.warm
	}
	return a.warm && a.score < b.score
}

// LoadWire implements WireSelector.
func (s *AdaptiveSelector) LoadWire(rep string, data []byte) (any, ValueStore, error) {
	return loadWire(s.cfg.Registry, rep, data)
}
