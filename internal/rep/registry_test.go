package rep

import (
	"strings"
	"testing"

	"repro/internal/client"
	"repro/internal/typemap"
)

func newTestRegistry(t *testing.T) (*fixture, *Registry) {
	t.Helper()
	f := newFixture(t)
	return f, NewRegistry(f.reg, f.codec)
}

func TestRegistryResolvesByShortAndDisplayName(t *testing.T) {
	_, r := newTestRegistry(t)

	cases := []struct{ query, want string }{
		{"sax", "SAX events sequence"},
		{"SAX", "SAX events sequence"},
		{"SAX events sequence", "SAX events sequence"},
		{"compact-sax", "SAX events (compact)"},
		{"dom", "DOM tree"},
		{"xml", "XML message"},
		{"gob", "Gob serialization"},
		{"binser", "Binary serialization"},
		{"reflect", "Copy by reflection"},
		{"clone", "Copy by clone"},
		{"ref", "Pass by reference"},
	}
	for _, c := range cases {
		store, err := r.Store(c.query)
		if err != nil {
			t.Errorf("Store(%q): %v", c.query, err)
			continue
		}
		if store.Name() != c.want {
			t.Errorf("Store(%q).Name() = %q, want %q", c.query, store.Name(), c.want)
		}
	}

	for _, c := range []struct{ query, want string }{
		{"string", "String concatenation"},
		{"xml", "XML message"},
		{"gob", "Gob serialization"},
		{"binser", "Binary serialization"},
		{"String concatenation", "String concatenation"},
	} {
		gen, err := r.Key(c.query)
		if err != nil {
			t.Errorf("Key(%q): %v", c.query, err)
			continue
		}
		if gen.Name() != c.want {
			t.Errorf("Key(%q).Name() = %q, want %q", c.query, gen.Name(), c.want)
		}
	}
}

func TestRegistryResolvesSelectionPolicies(t *testing.T) {
	_, r := newTestRegistry(t)
	auto, err := r.Store("auto")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := auto.(*AutoStore); !ok {
		t.Errorf("auto resolved to %T", auto)
	}
	ad1, err := r.Store("adaptive")
	if err != nil {
		t.Fatal(err)
	}
	sel1, ok := ad1.(*AdaptiveSelector)
	if !ok {
		t.Fatalf("adaptive resolved to %T", ad1)
	}
	ad2, err := r.Store("Adaptive")
	if err != nil {
		t.Fatal(err)
	}
	if sel1 == ad2.(*AdaptiveSelector) {
		t.Error("adaptive must resolve to a fresh selector per call (independent cost models)")
	}
}

func TestRegistryUnknownNames(t *testing.T) {
	_, r := newTestRegistry(t)
	if _, err := r.Store("carrier-pigeon"); err == nil || !strings.Contains(err.Error(), "carrier-pigeon") {
		t.Errorf("err = %v", err)
	}
	if _, err := r.Key("carrier-pigeon"); err == nil {
		t.Error("unknown key name accepted")
	}
}

func TestRegistryApplicabilityPredicates(t *testing.T) {
	f, r := newTestRegistry(t)

	full := f.ictx(t, "get", &item{Name: "b"})
	reqOnly := f.reqCtx("get")
	reqOnly.Result = &item{Name: "b"}
	immutable := f.ictx(t, "spell", "hello")
	cloneable := f.ictx(t, "get", &cloneableItem{Name: "c"})
	opaque := f.ictx(t, "get", &item{Name: "x"})
	opaque.Result = &opaqueResult{Name: "o"}

	check := func(name string, ictx *client.Context, want bool) {
		t.Helper()
		spec, err := r.ValueSpecFor(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := spec.Applicable(ictx); got != want {
			t.Errorf("%s applicable = %v, want %v", name, got, want)
		}
	}

	check("xml", full, true)
	check("xml", reqOnly, false) // nothing captured
	check("sax", full, true)
	check("sax", reqOnly, false)
	check("dom", full, true)
	check("reflect", full, true)
	check("reflect", opaque, false)
	check("gob", full, true)
	check("gob", opaque, false)
	check("clone", cloneable, true)
	check("clone", full, false)
	check("ref", immutable, true)
	check("ref", full, false)
}

func TestRegistryRegisterTypeDelegates(t *testing.T) {
	f, r := newTestRegistry(t)
	type extra struct{ V int }
	q := typemap.QName{Space: testNS, Local: "Extra"}
	if err := r.RegisterType(q, extra{}); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.reg.TypeFor(q); !ok {
		t.Error("RegisterType did not reach the underlying typemap registry")
	}
	if r.Types() != f.reg {
		t.Error("Types() must expose the underlying registry")
	}
}

func TestRegistryNamesAndOrder(t *testing.T) {
	_, r := newTestRegistry(t)
	values := r.Values()
	if len(values) != 11 {
		t.Fatalf("builtin value specs = %d, want 11", len(values))
	}
	// Registration order follows Table 3: message-level representations
	// first, pass-by-reference, then the streaming additions (§5i).
	if values[0].Name != "xml" || values[len(values)-1].Name != "xmltmpl" {
		t.Errorf("order = %s ... %s", values[0].Name, values[len(values)-1].Name)
	}
	for _, spec := range values {
		if spec.Stage == "" || spec.Info.Representation == "" || spec.Applicable == nil {
			t.Errorf("spec %s incompletely registered: %+v", spec.Name, spec)
		}
	}
	if len(r.Keys()) != 4 {
		t.Errorf("builtin key specs = %d, want 4", len(r.Keys()))
	}
	names := r.ValueNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("ValueNames not sorted: %v", names)
		}
	}
}
