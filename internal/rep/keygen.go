package rep

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
	"strconv"
	"sync"

	"repro/internal/client"
	"repro/internal/soap"
)

// KeyGenerator derives the cache key for an invocation. Per Section
// 4.1, the complete key covers the endpoint URL, the operation name,
// and all parameter names and values.
type KeyGenerator interface {
	// Name identifies the strategy in reports (Table 6 rows).
	Name() string
	// Key returns the cache key, or an error when the strategy's
	// limitation (Table 2) excludes these parameters.
	Key(ictx *client.Context) (string, error)
}

// KeyAppender is an optional KeyGenerator extension: AppendKey writes
// the key bytes onto dst and returns the extended slice. The cache
// prefers it over Key because the bytes can live in a pooled scratch
// buffer and be reduced to a digest without ever materializing a key
// string — on the hit path that is the difference between zero
// allocations and one per lookup.
type KeyAppender interface {
	// AppendKey appends the key for ictx to dst. The returned slice
	// must not be retained by the generator.
	AppendKey(dst []byte, ictx *client.Context) ([]byte, error)
}

// keyString materializes ka's key through the pooled scratch buffer,
// so a Key call pays exactly one allocation — the returned string.
func keyString(ka KeyAppender, ictx *client.Context) (string, error) {
	bp := keyBufPool.Get().(*[]byte)
	b, err := ka.AppendKey((*bp)[:0], ictx)
	if err != nil {
		keyBufPool.Put(bp)
		return "", err
	}
	key := string(b)
	*bp = b[:0] // keep any growth for the next key
	keyBufPool.Put(bp)
	return key, nil
}

// XMLMessageKey generates the key by serializing the request to its
// XML message (Section 4.1.1). No limitation on parameter types, but
// serialization is paid on every lookup — including hits.
type XMLMessageKey struct {
	codec *soap.Codec
}

var (
	_ KeyGenerator = (*XMLMessageKey)(nil)
	_ KeyAppender  = (*XMLMessageKey)(nil)
)

// NewXMLMessageKey returns the XML-message key strategy.
func NewXMLMessageKey(codec *soap.Codec) *XMLMessageKey {
	return &XMLMessageKey{codec: codec}
}

// Name implements KeyGenerator.
func (k *XMLMessageKey) Name() string { return "XML message" }

// Key implements KeyGenerator.
func (k *XMLMessageKey) Key(ictx *client.Context) (string, error) {
	return keyString(k, ictx)
}

// AppendKey implements KeyAppender.
func (k *XMLMessageKey) AppendKey(dst []byte, ictx *client.Context) ([]byte, error) {
	doc, err := k.codec.EncodeRequest(ictx.Namespace, ictx.Operation, ictx.Params)
	if err != nil {
		return nil, fmt.Errorf("rep: xml key: %w", err)
	}
	// The endpoint is not part of the message body; prepend it so two
	// services with identical operations do not collide.
	dst = append(dst, ictx.Endpoint...)
	dst = append(dst, 0)
	return append(dst, doc...), nil
}

// gobBufPool recycles the gob scratch buffers GobKey encodes into. The
// encoder itself is deliberately built fresh per key: a gob stream's
// first message carries the type definitions and later messages omit
// them, so a pooled encoder would generate history-dependent bytes —
// the same parameters would key differently depending on what the
// encoder had seen before.
var gobBufPool = sync.Pool{
	New: func() any { return new(bytes.Buffer) },
}

// GobKey generates the key from the gob-serialized form of the
// parameter values (Section 4.1.2-A, the Java-serialization analog).
// Limitation: every parameter must be gob-encodable.
type GobKey struct{}

var (
	_ KeyGenerator = GobKey{}
	_ KeyAppender  = GobKey{}
)

// NewGobKey returns the serialization key strategy.
func NewGobKey() GobKey { return GobKey{} }

// Name implements KeyGenerator.
func (GobKey) Name() string { return "Gob serialization" }

// Key implements KeyGenerator.
func (k GobKey) Key(ictx *client.Context) (string, error) {
	buf := gobBufPool.Get().(*bytes.Buffer)
	defer gobBufPool.Put(buf)
	if err := k.encode(buf, ictx); err != nil {
		return "", err
	}
	return buf.String(), nil
}

// AppendKey implements KeyAppender. Gob itself still allocates while
// encoding, but the scratch buffer is pooled and the key bytes never
// become a string.
func (k GobKey) AppendKey(dst []byte, ictx *client.Context) ([]byte, error) {
	buf := gobBufPool.Get().(*bytes.Buffer)
	defer gobBufPool.Put(buf)
	if err := k.encode(buf, ictx); err != nil {
		return nil, err
	}
	return append(dst, buf.Bytes()...), nil
}

// encode writes the key bytes into the (reset) scratch buffer.
func (GobKey) encode(buf *bytes.Buffer, ictx *client.Context) error {
	buf.Reset()
	buf.WriteString(ictx.Endpoint)
	buf.WriteByte(0)
	buf.WriteString(ictx.Operation)
	buf.WriteByte(0)
	enc := gob.NewEncoder(buf)
	for _, p := range ictx.Params {
		if err := registerGobValue(p.Value); err != nil {
			return fmt.Errorf("rep: gob key: param %s: %w", p.Name, err)
		}
		if err := enc.Encode(p.Name); err != nil {
			return fmt.Errorf("rep: gob key: %w", err)
		}
		if err := encodeGobAny(enc, p.Value); err != nil {
			return fmt.Errorf("rep: gob key: param %s: %w", p.Name, err)
		}
	}
	return nil
}

// StringKey generates the key from the string forms of the parameter
// values (Section 4.1.2-B, the toString analog). Limitation: every
// parameter must be a primitive or implement fmt.Stringer; types whose
// only string form would be their address are rejected, exactly as the
// paper rejects Object.toString.
type StringKey struct{}

var (
	_ KeyGenerator = StringKey{}
	_ KeyAppender  = StringKey{}
)

// NewStringKey returns the string key strategy.
func NewStringKey() StringKey { return StringKey{} }

// Name implements KeyGenerator.
func (StringKey) Name() string { return "String concatenation" }

// Key implements KeyGenerator.
func (k StringKey) Key(ictx *client.Context) (string, error) {
	return keyString(k, ictx)
}

// AppendKey implements KeyAppender. Every value is rendered with the
// strconv Append family straight into dst, so key generation itself
// performs no heap allocation once dst has capacity.
//
//lint:hotpath
func (StringKey) AppendKey(dst []byte, ictx *client.Context) ([]byte, error) {
	dst = append(dst, ictx.Endpoint...)
	dst = append(dst, 0)
	dst = append(dst, ictx.Operation...)
	for i := range ictx.Params {
		p := &ictx.Params[i]
		dst = append(dst, 0)
		dst = append(dst, p.Name...)
		dst = append(dst, '=')
		var err error
		dst, err = appendString(dst, p.Value)
		if err != nil {
			//lint:ignore hotpath unrepresentable param type: the lookup is abandoned, so this path never runs on a hit
			return nil, fmt.Errorf("rep: string key: param %s: %w", p.Name, err)
		}
	}
	return dst, nil
}

// appendString renders one parameter value onto dst.
//
//lint:hotpath
func appendString(dst []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(dst, "<nil>"...), nil
	case string:
		return append(dst, x...), nil
	case bool:
		return strconv.AppendBool(dst, x), nil
	case int:
		return strconv.AppendInt(dst, int64(x), 10), nil
	case int8:
		return strconv.AppendInt(dst, int64(x), 10), nil
	case int16:
		return strconv.AppendInt(dst, int64(x), 10), nil
	case int32:
		return strconv.AppendInt(dst, int64(x), 10), nil
	case int64:
		return strconv.AppendInt(dst, x, 10), nil
	case uint:
		return strconv.AppendUint(dst, uint64(x), 10), nil
	case uint8:
		return strconv.AppendUint(dst, uint64(x), 10), nil
	case uint16:
		return strconv.AppendUint(dst, uint64(x), 10), nil
	case uint32:
		return strconv.AppendUint(dst, uint64(x), 10), nil
	case uint64:
		return strconv.AppendUint(dst, x, 10), nil
	case float32:
		return strconv.AppendFloat(dst, float64(x), 'g', -1, 32), nil
	case float64:
		return strconv.AppendFloat(dst, x, 'g', -1, 64), nil
	case []byte:
		// Byte-array parameters are rare for cacheable retrievals but
		// cheap to render faithfully.
		return append(dst, x...), nil
	case fmt.Stringer:
		return append(dst, x.String()...), nil
	default:
		//lint:ignore hotpath unrepresentable param type: the lookup is abandoned, so this path never runs on a hit
		return nil, fmt.Errorf("type %T has no value-based string form", v)
	}
}

// encodeGobAny encodes a dynamically typed value. Gob cannot encode a
// bare interface, so the concrete value is encoded along with its type
// name (registered by registerGobValue).
func encodeGobAny(enc *gob.Encoder, v any) error {
	if v == nil {
		return enc.Encode("")
	}
	if err := enc.Encode(reflect.TypeOf(v).String()); err != nil {
		return err
	}
	return enc.EncodeValue(reflect.ValueOf(v))
}
