package rep

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/soap"
)

// allStores builds every representation against the fixture.
func allStores(f *fixture) map[string]ValueStore {
	return map[string]ValueStore{
		"xml":        NewXMLMessageStore(f.codec),
		"sax":        NewSAXEventsStore(f.codec),
		"saxcompact": NewCompactSAXStore(f.codec),
		"dom":        NewDOMStore(f.codec),
		"gob":        NewGobStore(f.reg),
		"binser":     NewBinserStore(f.reg),
		"reflect":    NewReflectCopyStore(f.reg),
	}
}

func TestAllStoresRoundTripBean(t *testing.T) {
	f := newFixture(t)
	orig := &item{Name: "res", Score: 2.5, Tags: []string{"a", "b"}}
	ictx := f.ictx(t, "get", orig)

	for name, store := range allStores(f) {
		payload, size, err := store.Store(ictx)
		if err != nil {
			t.Errorf("%s: store: %v", name, err)
			continue
		}
		if size <= 0 {
			t.Errorf("%s: size = %d", name, size)
		}
		got, err := store.Load(payload)
		if err != nil {
			t.Errorf("%s: load: %v", name, err)
			continue
		}
		gi, ok := got.(*item)
		if !ok {
			t.Errorf("%s: loaded %T", name, got)
			continue
		}
		if !reflect.DeepEqual(gi, orig) {
			t.Errorf("%s: loaded %+v, want %+v", name, gi, orig)
		}
		if gi == orig {
			t.Errorf("%s: load aliased the original", name)
		}
		// Two loads are independent objects.
		got2, err := store.Load(payload)
		if err != nil {
			t.Fatalf("%s: second load: %v", name, err)
		}
		if got2 == got {
			t.Errorf("%s: two loads returned the same pointer", name)
		}
	}
}

func TestStoreIsolationFromLaterMutation(t *testing.T) {
	// After Store, mutating the live result must not change what Load
	// returns (the deep-copy-on-store requirement of Section 3.1).
	f := newFixture(t)
	for name, store := range allStores(f) {
		orig := &item{Name: "pristine", Tags: []string{"x"}}
		ictx := f.ictx(t, "get", orig)
		payload, _, err := store.Store(ictx)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		orig.Name = "mutated"
		orig.Tags[0] = "mutated"
		got, err := store.Load(payload)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		gi := got.(*item)
		if gi.Name != "pristine" || gi.Tags[0] != "x" {
			t.Errorf("%s: mutation leaked into payload: %+v", name, gi)
		}
	}
}

func TestCloneCopyStore(t *testing.T) {
	f := newFixture(t)
	store := NewCloneCopyStore()
	orig := &cloneableItem{Name: "c"}
	ictx := f.ictx(t, "get", orig)

	payload, _, err := store.Store(ictx)
	if err != nil {
		t.Fatal(err)
	}
	if payload == any(orig) {
		t.Error("store did not clone")
	}
	got, err := store.Load(payload)
	if err != nil {
		t.Fatal(err)
	}
	gi := got.(*cloneableItem)
	if gi.Name != "c" || gi == orig {
		t.Errorf("got %+v", gi)
	}

	// Non-Cloner is rejected with ErrNotApplicable.
	ictx2 := f.ictx(t, "get", &item{})
	if _, _, err := store.Store(ictx2); !errors.Is(err, ErrNotApplicable) {
		t.Errorf("err = %v, want ErrNotApplicable", err)
	}
}

func TestRefStoreImmutableOnly(t *testing.T) {
	f := newFixture(t)
	store := NewRefStore(f.reg, false)

	ictx := f.ictx(t, "spell", "suggestion text")
	payload, _, err := store.Store(ictx)
	if err != nil {
		t.Fatal(err)
	}
	got, err := store.Load(payload)
	if err != nil || got != "suggestion text" {
		t.Errorf("got %#v, %v", got, err)
	}

	// Mutable result rejected unless the policy says read-only.
	ictx2 := f.ictx(t, "get", &item{})
	if _, _, err := store.Store(ictx2); !errors.Is(err, ErrNotApplicable) {
		t.Errorf("err = %v, want ErrNotApplicable", err)
	}

	relaxed := NewRefStore(f.reg, true)
	orig := &item{Name: "shared"}
	ictx3 := f.ictx(t, "get", orig)
	payload3, _, err := relaxed.Store(ictx3)
	if err != nil {
		t.Fatal(err)
	}
	got3, err := relaxed.Load(payload3)
	if err != nil {
		t.Fatal(err)
	}
	if got3 != any(orig) {
		t.Error("read-only ref store must share the reference")
	}
}

func TestGobStoreRejectsUnexportedState(t *testing.T) {
	f := newFixture(t)
	store := NewGobStore(f.reg)
	ictx := f.ictx(t, "get", nil)
	ictx.Result = &opaqueResult{Name: "x", secret: 7}
	if _, _, err := store.Store(ictx); !errors.Is(err, ErrNotApplicable) {
		t.Errorf("err = %v, want ErrNotApplicable (gob would drop the unexported field)", err)
	}
}

func TestReflectStoreRejectsNonBean(t *testing.T) {
	f := newFixture(t)
	store := NewReflectCopyStore(f.reg)
	ictx := f.ictx(t, "get", nil)
	ictx.Result = &opaqueResult{Name: "x", secret: 7}
	if _, _, err := store.Store(ictx); !errors.Is(err, ErrNotApplicable) {
		t.Errorf("err = %v, want ErrNotApplicable", err)
	}
}

func TestDOMStoreFromXMLOnly(t *testing.T) {
	f := newFixture(t)
	store := NewDOMStore(f.codec)
	ictx := f.ictx(t, "get", &item{Name: "tree"})
	ictx.ResponseEvents = nil // force the parse-from-XML path
	payload, size, err := store.Store(ictx)
	if err != nil {
		t.Fatal(err)
	}
	if size <= 0 {
		t.Errorf("size = %d", size)
	}
	got, err := store.Load(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.(*item).Name != "tree" {
		t.Errorf("got %+v", got)
	}
	if _, err := store.Load("bogus"); err == nil {
		t.Error("bad payload accepted")
	}
	// No captured response at all: refused.
	if _, _, err := store.Store(f.reqCtx("get")); err == nil {
		t.Error("empty context accepted")
	}
}

func TestCompactSAXStoreSmallerThanNaive(t *testing.T) {
	f := newFixture(t)
	ictx := f.ictx(t, "get", &item{Name: "x", Tags: []string{"a", "b", "c", "d"}})
	_, naive, err := NewSAXEventsStore(f.codec).Store(ictx)
	if err != nil {
		t.Fatal(err)
	}
	_, compact, err := NewCompactSAXStore(f.codec).Store(ictx)
	if err != nil {
		t.Fatal(err)
	}
	if compact >= naive {
		t.Errorf("compact %d not smaller than naive %d", compact, naive)
	}
}

func TestCompactSAXStoreWithoutRecordedEvents(t *testing.T) {
	f := newFixture(t)
	store := NewCompactSAXStore(f.codec)
	ictx := f.ictx(t, "get", &item{Name: "lazy"})
	ictx.ResponseEvents = nil
	payload, _, err := store.Store(ictx)
	if err != nil {
		t.Fatal(err)
	}
	got, err := store.Load(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.(*item).Name != "lazy" {
		t.Errorf("got %+v", got)
	}
	if _, err := store.Load(42); err == nil {
		t.Error("bad payload accepted")
	}
}

func TestSAXStoreWithoutRecordedEvents(t *testing.T) {
	// When the client did not record events, the store records from the
	// raw XML on the miss path.
	f := newFixture(t)
	store := NewSAXEventsStore(f.codec)
	ictx := f.ictx(t, "get", &item{Name: "lazy"})
	ictx.ResponseEvents = nil

	payload, _, err := store.Store(ictx)
	if err != nil {
		t.Fatal(err)
	}
	got, err := store.Load(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.(*item).Name != "lazy" {
		t.Errorf("got %+v", got)
	}
}

func TestXMLStoreRequiresResponse(t *testing.T) {
	f := newFixture(t)
	store := NewXMLMessageStore(f.codec)
	ictx := f.reqCtx("get")
	if _, _, err := store.Store(ictx); err == nil {
		t.Error("expected error without response XML")
	}
}

func TestStoreLoadWrongPayloadTypes(t *testing.T) {
	f := newFixture(t)
	if _, err := NewXMLMessageStore(f.codec).Load(42); err == nil {
		t.Error("xml store accepted bad payload")
	}
	if _, err := NewSAXEventsStore(f.codec).Load(42); err == nil {
		t.Error("sax store accepted bad payload")
	}
	if _, err := NewGobStore(f.reg).Load(42); err == nil {
		t.Error("gob store accepted bad payload")
	}
	if _, err := NewCloneCopyStore().Load(42); err == nil {
		t.Error("clone store accepted bad payload")
	}
	if _, err := NewAutoStore(f.reg, f.codec).Load(42); err == nil {
		t.Error("auto store accepted bad payload")
	}
}

func TestAutoStoreClassification(t *testing.T) {
	f := newFixture(t)
	auto := NewAutoStore(f.reg, f.codec)

	cases := []struct {
		name   string
		result any
		want   string
	}{
		{"string result", "text", "Pass by reference"},
		{"int result", 42, "Pass by reference"},
		{"bytes result", []byte{1, 2}, "Copy by reflection"},
		{"cloneable result", &cloneableItem{Name: "c"}, "Copy by clone"},
		{"bean result", &item{Name: "b"}, "Copy by reflection"},
		{"nil result", nil, "Pass by reference"},
		{"opaque result", &opaqueResult{Name: "o"}, "SAX events sequence"},
	}
	for _, c := range cases {
		ictx := f.ictx(t, "get", nil)
		ictx.Result = c.result
		if got := auto.Classify(ictx); got != c.want {
			t.Errorf("%s: classified %q, want %q", c.name, got, c.want)
		}
	}
}

func TestAutoStoreRoundTripEachClass(t *testing.T) {
	f := newFixture(t)
	auto := NewAutoStore(f.reg, f.codec)

	// Immutable: shared.
	ictx := f.ictx(t, "spell", "hello")
	payload, _, err := auto.Store(ictx)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := auto.Load(payload); got != "hello" {
		t.Errorf("got %#v", got)
	}

	// Cloneable: cloned.
	cl := &cloneableItem{Name: "c"}
	ictx = f.ictx(t, "get", cl)
	payload, _, err = auto.Store(ictx)
	if err != nil {
		t.Fatal(err)
	}
	got, err := auto.Load(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.(*cloneableItem) == cl || got.(*cloneableItem).Name != "c" {
		t.Errorf("clone class: %#v", got)
	}

	// Bean: reflect-copied.
	b := &item{Name: "bean", Tags: []string{"t"}}
	ictx = f.ictx(t, "get", b)
	payload, _, err = auto.Store(ictx)
	if err != nil {
		t.Fatal(err)
	}
	got, err = auto.Load(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.(*item) == b || !reflect.DeepEqual(got, b) {
		t.Errorf("bean class: %#v", got)
	}

	// Opaque (unexported field): falls to SAX events. The SAX decode
	// constructs a registered type, so the result differs — but the
	// store must at least round-trip without error using the response
	// on the wire. Register nothing extra; the opaque value cannot be
	// encoded, so fabricate the context from a bean and swap the
	// result type to force the SAX path.
	ictx = f.ictx(t, "get", &item{Name: "wire"})
	ictx.Result = &opaqueResult{Name: "wire", secret: 1}
	payload, _, err = auto.Store(ictx)
	if err != nil {
		t.Fatal(err)
	}
	got, err = auto.Load(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.(*item).Name != "wire" {
		t.Errorf("sax class: %#v", got)
	}
}

func TestKeyGenerators(t *testing.T) {
	f := newFixture(t)
	gens := []KeyGenerator{
		NewXMLMessageKey(f.codec),
		NewGobKey(),
		NewBinserKey(f.reg),
		NewStringKey(),
	}
	params1 := []soap.Param{{Name: "q", Value: "golang"}, {Name: "n", Value: 10}}
	params2 := []soap.Param{{Name: "q", Value: "golang"}, {Name: "n", Value: 11}}

	for _, g := range gens {
		k1a, err := g.Key(f.reqCtx("search", params1...))
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		k1b, err := g.Key(f.reqCtx("search", params1...))
		if err != nil {
			t.Fatal(err)
		}
		if k1a != k1b {
			t.Errorf("%s: key not deterministic", g.Name())
		}
		k2, err := g.Key(f.reqCtx("search", params2...))
		if err != nil {
			t.Fatal(err)
		}
		if k1a == k2 {
			t.Errorf("%s: different params same key", g.Name())
		}
		kOp, err := g.Key(f.reqCtx("other", params1...))
		if err != nil {
			t.Fatal(err)
		}
		if kOp == k1a {
			t.Errorf("%s: different operations same key", g.Name())
		}
		// Different endpoints must not collide.
		c2 := f.reqCtx("search", params1...)
		c2.Endpoint = "http://other/endpoint"
		kEp, err := g.Key(c2)
		if err != nil {
			t.Fatal(err)
		}
		if kEp == k1a {
			t.Errorf("%s: different endpoints same key", g.Name())
		}
	}
}

func TestStringKeyRejectsStructParam(t *testing.T) {
	f := newFixture(t)
	g := NewStringKey()
	if _, err := g.Key(f.reqCtx("op", soap.Param{Name: "x", Value: &item{}})); err == nil {
		t.Error("expected error for struct param without Stringer")
	}
}

func TestStringKeyStringerParam(t *testing.T) {
	f := newFixture(t)
	g := NewStringKey()
	k, err := g.Key(f.reqCtx("op", soap.Param{Name: "x", Value: stringerParam{v: "S"}}))
	if err != nil {
		t.Fatal(err)
	}
	if k == "" {
		t.Error("empty key")
	}
}

type stringerParam struct{ v string }

func (s stringerParam) String() string { return s.v }

func TestGobKeyRejectsFunc(t *testing.T) {
	f := newFixture(t)
	g := NewGobKey()
	if _, err := g.Key(f.reqCtx("op", soap.Param{Name: "f", Value: func() {}})); err == nil {
		t.Error("expected error for func param")
	}
}

func TestBinserKeyRejectsUnregisteredStruct(t *testing.T) {
	f := newFixture(t)
	g := NewBinserKey(f.reg)
	type loose struct{ X int }
	if _, err := g.Key(f.reqCtx("op", soap.Param{Name: "p", Value: &loose{}})); err == nil {
		t.Error("expected error for unregistered struct param")
	}
	// Registered bean params are fine.
	if _, err := g.Key(f.reqCtx("op", soap.Param{Name: "p", Value: &item{Name: "x"}})); err != nil {
		t.Errorf("registered bean param rejected: %v", err)
	}
}

func TestBinserStoreRejectsOpaque(t *testing.T) {
	f := newFixture(t)
	store := NewBinserStore(f.reg)
	ictx := f.ictx(t, "get", nil)
	ictx.Result = &opaqueResult{Name: "x", secret: 1}
	if _, _, err := store.Store(ictx); !errors.Is(err, ErrNotApplicable) {
		t.Errorf("err = %v, want ErrNotApplicable", err)
	}
}

func TestBinserStoreLoadBadPayload(t *testing.T) {
	f := newFixture(t)
	if _, err := NewBinserStore(f.reg).Load(42); err == nil {
		t.Error("binser store accepted bad payload")
	}
	if _, err := NewBinserStore(f.reg).Load([]byte{255, 255}); err == nil {
		t.Error("binser store accepted garbage bytes")
	}
}

func TestStringKeyAllPrimitiveKinds(t *testing.T) {
	f := newFixture(t)
	g := NewStringKey()
	params := []soap.Param{
		{Name: "a", Value: "s"},
		{Name: "b", Value: true},
		{Name: "c", Value: int(1)},
		{Name: "d", Value: int8(2)},
		{Name: "e", Value: int16(3)},
		{Name: "f", Value: int32(4)},
		{Name: "g", Value: int64(5)},
		{Name: "h", Value: uint(6)},
		{Name: "i", Value: uint16(7)},
		{Name: "j", Value: uint32(8)},
		{Name: "k", Value: uint64(9)},
		{Name: "l", Value: float32(1.5)},
		{Name: "m", Value: float64(2.5)},
		{Name: "n", Value: []byte("bytes")},
		{Name: "o", Value: nil},
	}
	k, err := g.Key(f.reqCtx("op", params...))
	if err != nil {
		t.Fatal(err)
	}
	if k == "" {
		t.Error("empty key")
	}
}

func TestStoreAndKeyGenNames(t *testing.T) {
	f := newFixture(t)
	names := map[string]bool{}
	for _, s := range []ValueStore{
		NewXMLMessageStore(f.codec), NewSAXEventsStore(f.codec),
		NewCompactSAXStore(f.codec), NewDOMStore(f.codec),
		NewGobStore(f.reg), NewBinserStore(f.reg),
		NewReflectCopyStore(f.reg), NewCloneCopyStore(),
		NewRefStore(f.reg, false), NewAutoStore(f.reg, f.codec),
	} {
		if s.Name() == "" || names[s.Name()] {
			t.Errorf("store name %q empty or duplicated", s.Name())
		}
		names[s.Name()] = true
	}
	for _, g := range []KeyGenerator{
		NewXMLMessageKey(f.codec), NewGobKey(), NewBinserKey(f.reg), NewStringKey(),
	} {
		if g.Name() == "" || names[g.Name()] && g.Name() != "Gob serialization" && g.Name() != "Binary serialization" && g.Name() != "XML message" {
			t.Errorf("keygen name %q empty", g.Name())
		}
	}
}

func TestRepresentationMatrices(t *testing.T) {
	// The Table 2 and Table 3 matrices must cover every shipped
	// strategy family.
	if got := len(KeyRepresentations()); got != 3 {
		t.Errorf("key representations = %d, want 3", got)
	}
	if got := len(ValueRepresentations()); got != 8 {
		t.Errorf("value representations = %d, want 8", got)
	}
	for _, r := range append(KeyRepresentations(), ValueRepresentations()...) {
		if r.Representation == "" || r.Method == "" || r.Limitation == "" {
			t.Errorf("incomplete matrix row %+v", r)
		}
	}
}
