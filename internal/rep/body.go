package rep

import (
	"fmt"
	"strings"

	"repro/internal/sax"
)

// BodyStore is the server-side analog of ValueStore: a representation
// for fully encoded response envelopes held by the server response
// cache. Store converts the encoded body into the cached payload and
// reports its resident size; Load materializes the bytes to serve a
// hit. Unlike ValueStore there is no object graph — the server cache
// sits below deserialization — so the trade is purely memory versus
// re-materialization cost.
type BodyStore interface {
	// Name identifies the representation in reports and flags.
	Name() string
	// Store converts an encoded response body into the cached payload.
	// The body must not be retained; copy whatever is kept.
	Store(body []byte) (payload any, size int, err error)
	// Load materializes the encoded body from a payload. The returned
	// slice is owned by the caller's response path and must not alias
	// cached state that a later Load would reuse destructively.
	Load(payload any) ([]byte, error)
}

// RawBodyStore keeps the encoded bytes as-is: zero materialization
// cost on a hit, full body size resident. The server cache's default.
type RawBodyStore struct{}

var _ BodyStore = RawBodyStore{}

// NewRawBodyStore returns the identity body representation.
func NewRawBodyStore() RawBodyStore { return RawBodyStore{} }

// Name implements BodyStore.
func (RawBodyStore) Name() string { return "Raw bytes" }

// Store implements BodyStore.
func (RawBodyStore) Store(body []byte) (any, int, error) {
	cp := make([]byte, len(body))
	copy(cp, body)
	return cp, len(cp), nil
}

// Load implements BodyStore.
func (RawBodyStore) Load(payload any) ([]byte, error) {
	body, ok := payload.([]byte)
	if !ok {
		return nil, fmt.Errorf("rep: raw body store: payload is %T", payload)
	}
	return body, nil
}

// CompactBodyStore parses the encoded body into a SAX event sequence
// and keeps it in the string-interned compact form; a hit re-renders
// the envelope from the events. SOAP responses are highly repetitive,
// so resident size drops sharply in exchange for a serialization pass
// per hit — the server-side version of the SAX-versus-XML trade the
// client cache measures in Table 7.
type CompactBodyStore struct{}

var _ BodyStore = CompactBodyStore{}

// NewCompactBodyStore returns the compact-events body representation.
func NewCompactBodyStore() CompactBodyStore { return CompactBodyStore{} }

// Name implements BodyStore.
func (CompactBodyStore) Name() string { return "SAX events (compact)" }

// Store implements BodyStore.
func (CompactBodyStore) Store(body []byte) (any, int, error) {
	events, err := sax.Record(body)
	if err != nil {
		return nil, 0, fmt.Errorf("rep: compact body store: %w", err)
	}
	seq := sax.Compact(events)
	return seq, seq.MemSize(), nil
}

// Load implements BodyStore.
func (CompactBodyStore) Load(payload any) ([]byte, error) {
	seq, ok := payload.(*sax.CompactSequence)
	if !ok {
		return nil, fmt.Errorf("rep: compact body store: payload is %T", payload)
	}
	doc, err := sax.WriteSequence(seq.Events())
	if err != nil {
		return nil, fmt.Errorf("rep: compact body store: %w", err)
	}
	return []byte(doc), nil
}

// BodyStoreFor resolves a server body representation by name:
// "raw" (default) or "compact-sax".
func BodyStoreFor(name string) (BodyStore, error) {
	switch strings.ToLower(name) {
	case "", "raw":
		return NewRawBodyStore(), nil
	case "compact-sax", "compactsax", "compact":
		return NewCompactBodyStore(), nil
	default:
		return nil, fmt.Errorf("rep: unknown body representation %q (have raw, compact-sax)", name)
	}
}
