package rep

import (
	"bytes"
	"fmt"
	"io"
	"strings"

	"repro/internal/sax"
)

// BodyStore is the server-side analog of ValueStore: a representation
// for fully encoded response envelopes held by the server response
// cache. Store converts the encoded body into the cached payload and
// reports its resident size; Load materializes the bytes to serve a
// hit. Unlike ValueStore there is no object graph — the server cache
// sits below deserialization — so the trade is purely memory versus
// re-materialization cost.
type BodyStore interface {
	// Name identifies the representation in reports and flags.
	Name() string
	// Store converts an encoded response body into the cached payload.
	// The body must not be retained; copy whatever is kept.
	Store(body []byte) (payload any, size int, err error)
	// Load materializes the encoded body from a payload. The returned
	// slice is owned by the caller's response path and must not alias
	// cached state that a later Load would reuse destructively.
	Load(payload any) ([]byte, error)
}

// BodyStreamer is the optional BodyStore extension for the zero-copy
// hit path: WriteBody replays a payload straight into the response
// writer, skipping Load's []byte materialization. The server cache
// type-asserts for it and streams when present.
type BodyStreamer interface {
	WriteBody(payload any, w io.Writer) (int64, error)
}

// RawBodyStore keeps the encoded bytes as-is: zero materialization
// cost on a hit, full body size resident. The server cache's default.
type RawBodyStore struct{}

var _ BodyStore = RawBodyStore{}
var _ BodyStreamer = RawBodyStore{}

// NewRawBodyStore returns the identity body representation.
func NewRawBodyStore() RawBodyStore { return RawBodyStore{} }

// Name implements BodyStore.
func (RawBodyStore) Name() string { return "Raw bytes" }

// Store implements BodyStore.
func (RawBodyStore) Store(body []byte) (any, int, error) {
	cp := make([]byte, len(body))
	copy(cp, body)
	return cp, len(cp), nil
}

// Load implements BodyStore.
func (RawBodyStore) Load(payload any) ([]byte, error) {
	body, ok := payload.([]byte)
	if !ok {
		return nil, fmt.Errorf("rep: raw body store: payload is %T", payload)
	}
	return body, nil
}

// WriteBody implements BodyStreamer: one write, no copy.
//
//lint:hotpath
func (RawBodyStore) WriteBody(payload any, w io.Writer) (int64, error) {
	body, ok := payload.([]byte)
	if !ok {
		return 0, errRawBodyPayload
	}
	n, err := w.Write(body)
	return int64(n), err
}

// CompactBodyStore parses the encoded body into a SAX event sequence
// and keeps it in the string-interned compact form; a hit re-renders
// the envelope from the events. SOAP responses are highly repetitive,
// so resident size drops sharply in exchange for a serialization pass
// per hit — the server-side version of the SAX-versus-XML trade the
// client cache measures in Table 7.
type CompactBodyStore struct{}

var _ BodyStore = CompactBodyStore{}

// NewCompactBodyStore returns the compact-events body representation.
func NewCompactBodyStore() CompactBodyStore { return CompactBodyStore{} }

// Name implements BodyStore.
func (CompactBodyStore) Name() string { return "SAX events (compact)" }

// Store implements BodyStore.
func (CompactBodyStore) Store(body []byte) (any, int, error) {
	events, err := sax.Record(body)
	if err != nil {
		return nil, 0, fmt.Errorf("rep: compact body store: %w", err)
	}
	seq := sax.Compact(events)
	return seq, seq.MemSize(), nil
}

// Load implements BodyStore.
func (CompactBodyStore) Load(payload any) ([]byte, error) {
	seq, ok := payload.(*sax.CompactSequence)
	if !ok {
		return nil, fmt.Errorf("rep: compact body store: payload is %T", payload)
	}
	doc, err := sax.WriteSequence(seq.Events())
	if err != nil {
		return nil, fmt.Errorf("rep: compact body store: %w", err)
	}
	return []byte(doc), nil
}

// TemplateBodyStore is the server-side differential-serialization
// representation (DESIGN.md §5i): bodies of the same response shape
// share one interned splice skeleton, each entry holds only its escaped
// text values, and a hit streams by memcpy interleave through a pooled
// buffer. Compared with CompactBodyStore it trades slightly more
// resident memory for a hit path with no event replay and no escaping
// scan.
type TemplateBodyStore struct {
	tc *templateCache
}

// splicedBody pairs a spliced document with the verbatim prologue (XML
// declaration plus trailing whitespace) of the original body. The sax
// event model does not carry the declaration — parse skips it, the
// writer never emits one — so the prologue is kept here to make a
// served hit byte-identical to the handler's response.
type splicedBody struct {
	prologue string
	doc      *SplicedResponse
}

// xmlPrologue returns the leading XML declaration (and any whitespace
// separating it from the root element) of body, or "" when there is
// none.
func xmlPrologue(body []byte) string {
	if !bytes.HasPrefix(body, []byte("<?xml")) {
		return ""
	}
	end := bytes.Index(body, []byte("?>"))
	if end < 0 {
		return ""
	}
	end += 2
	for end < len(body) {
		switch body[end] {
		case ' ', '\t', '\r', '\n':
			end++
			continue
		}
		break
	}
	return string(body[:end])
}

var _ BodyStore = (*TemplateBodyStore)(nil)
var _ BodyStreamer = (*TemplateBodyStore)(nil)

// NewTemplateBodyStore returns the splice-template body representation.
func NewTemplateBodyStore() *TemplateBodyStore {
	return &TemplateBodyStore{tc: newTemplateCache()}
}

// Name implements BodyStore.
func (s *TemplateBodyStore) Name() string { return "XML template (splice)" }

// Store implements BodyStore.
func (s *TemplateBodyStore) Store(body []byte) (any, int, error) {
	events, err := sax.Record(body)
	if err != nil {
		return nil, 0, fmt.Errorf("rep: template body store: %w", err)
	}
	p, resident, err := s.tc.spliceFor(events)
	if err != nil {
		return nil, 0, fmt.Errorf("rep: template body store: %w", err)
	}
	prologue := xmlPrologue(body)
	return &splicedBody{prologue: prologue, doc: p}, resident + len(prologue), nil
}

// Load implements BodyStore.
func (s *TemplateBodyStore) Load(payload any) ([]byte, error) {
	p, ok := payload.(*splicedBody)
	if !ok {
		return nil, fmt.Errorf("rep: template body store: payload is %T", payload)
	}
	out := make([]byte, 0, len(p.prologue)+p.doc.Len())
	out = append(out, p.prologue...)
	return p.doc.tpl.AppendSplice(out, p.doc.values), nil
}

// WriteBody implements BodyStreamer: prologue then spliced document,
// through the shared splice buffer pool.
//
//lint:hotpath
func (s *TemplateBodyStore) WriteBody(payload any, w io.Writer) (int64, error) {
	p, ok := payload.(*splicedBody)
	if !ok {
		return 0, errSplicedPayload
	}
	var written int64
	if p.prologue != "" {
		n, err := io.WriteString(w, p.prologue)
		written = int64(n)
		if err != nil {
			return written, err
		}
	}
	n, err := p.doc.WriteTo(w)
	return written + n, err
}

// Stats snapshots the store's template interner.
func (s *TemplateBodyStore) Stats() TemplateStats { return s.tc.stats() }

// BodyStoreFor resolves a server body representation by name:
// "raw" (default), "compact-sax", or "xmltmpl".
func BodyStoreFor(name string) (BodyStore, error) {
	switch strings.ToLower(name) {
	case "", "raw":
		return NewRawBodyStore(), nil
	case "compact-sax", "compactsax", "compact":
		return NewCompactBodyStore(), nil
	case "xmltmpl", "template", "tmpl":
		return NewTemplateBodyStore(), nil
	default:
		return nil, fmt.Errorf("rep: unknown body representation %q (have raw, compact-sax, xmltmpl)", name)
	}
}
