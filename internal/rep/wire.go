package rep

import (
	"fmt"
	"time"

	"repro/internal/client"
	"repro/internal/sax"
)

// This file is the representation layer's second payoff (DESIGN.md
// §5h): representation chosen PER TIER. The in-process L1 keeps the
// full Table 3 menu including the copy/ref representations — payloads
// that are live object graphs and cannot leave the process. A remote
// tier can only hold bytes, so it admits the byte-oriented subset:
// the XML message, binary serialization, gob, and the compact SAX
// sequence, each able to flatten its payload to a wire form and back.

// WireStore is the optional ValueStore extension a representation
// implements when its payloads can cross a process boundary.
// EncodeWire flattens a payload produced by Store into bytes;
// DecodeWire reconstructs a payload that the same store's Load
// accepts. DecodeWire may retain the input slice (callers hand over
// ownership); EncodeWire's output may alias the payload, so callers
// must only write it, never mutate.
type WireStore interface {
	ValueStore
	EncodeWire(payload any) ([]byte, error)
	DecodeWire(data []byte) (any, error)
}

// wirePreference is the static priority among wire-capable
// representations, used until the cost model has samples. The
// streaming representations lead — their wire form is the response
// itself, so a remote tier ships them with zero transcoding — but
// both are gated on Context.AcceptStream, so non-stream consumers
// start at binary serialization (compact payloads, cheap decode per
// Table 7), then the compact SAX sequence (no type limitation beyond
// message capture), then the raw XML message (universal), then gob
// (encoder overhead inverts the ordering at these message sizes; see
// the ablation benchmarks).
var wirePreference = []string{"raw", "xmltmpl", "binser", "compact-sax", "xml", "gob"}

// WireSpecs returns the registered wire-capable value specs, the
// static preference order first, any further registered WireStores in
// registration order after.
func (r *Registry) WireSpecs() []*ValueSpec {
	var out []*ValueSpec
	seen := make(map[string]bool)
	for _, name := range wirePreference {
		if spec, err := r.ValueSpecFor(name); err == nil {
			if _, ok := spec.Store.(WireStore); ok {
				out = append(out, spec)
				seen[spec.Name] = true
			}
		}
	}
	for _, spec := range r.Values() {
		if _, ok := spec.Store.(WireStore); ok && !seen[spec.Name] {
			out = append(out, spec)
		}
	}
	return out
}

// WireSelector chooses and decodes the representation for remote
// (byte-oriented) tiers. Both selection policies implement it: the
// AdaptiveSelector scores wire candidates with its measured cost
// models plus the learned network cost, StaticWire walks the fixed
// preference order. core.Cache resolves one per cache when a tier
// stack is configured.
type WireSelector interface {
	// StoreWire encodes the invocation's result with the chosen
	// wire-capable representation, returning the representation's short
	// registry name (what Entry.Rep carries) and the wire bytes.
	StoreWire(ictx *client.Context) (rep string, data []byte, size int, err error)
	// LoadWire reconstructs a payload from wire bytes produced under
	// rep (possibly by another process), returning the payload and the
	// store that materializes it, ready for an L1 fill.
	LoadWire(rep string, data []byte) (payload any, store ValueStore, err error)
	// ObserveNet folds one remote round trip (latency, payload bytes)
	// into the selector's network cost estimate. No-op for selectors
	// without a cost model.
	ObserveNet(d time.Duration, bytes int)
}

// loadWire resolves rep in reg and decodes data — the shared LoadWire
// implementation.
func loadWire(reg *Registry, rep string, data []byte) (any, ValueStore, error) {
	spec, err := reg.ValueSpecFor(rep)
	if err != nil {
		return nil, nil, err
	}
	ws, ok := spec.Store.(WireStore)
	if !ok {
		return nil, nil, fmt.Errorf("rep: %q is not a wire-capable representation", rep)
	}
	payload, err := ws.DecodeWire(data)
	if err != nil {
		return nil, nil, err
	}
	return payload, spec.Store, nil
}

// StaticWire is the WireSelector for caches with a fixed ValueStore
// (no adaptive selector): first applicable representation in the
// static preference order wins, network cost is not modeled.
type StaticWire struct {
	reg *Registry
}

var _ WireSelector = (*StaticWire)(nil)

// NewStaticWire returns the static wire selector over reg.
func NewStaticWire(reg *Registry) *StaticWire { return &StaticWire{reg: reg} }

// StoreWire implements WireSelector.
func (w *StaticWire) StoreWire(ictx *client.Context) (string, []byte, int, error) {
	var firstErr error
	for _, spec := range w.reg.WireSpecs() {
		if !spec.Applicable(ictx) {
			continue
		}
		payload, _, err := spec.Store.Store(ictx)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		data, err := spec.Store.(WireStore).EncodeWire(payload)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		return spec.Name, data, len(data), nil
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("rep: %w: no wire-capable representation holds this result", ErrNotApplicable)
	}
	return "", nil, 0, firstErr
}

// LoadWire implements WireSelector.
func (w *StaticWire) LoadWire(rep string, data []byte) (any, ValueStore, error) {
	return loadWire(w.reg, rep, data)
}

// ObserveNet implements WireSelector (no cost model to feed).
func (w *StaticWire) ObserveNet(time.Duration, int) {}

// --- WireStore implementations -------------------------------------
//
// The three representations whose payloads already ARE the wire bytes
// (XML message, binser, gob) encode by identity; the compact SAX
// sequence flattens its interned tables through sax.AppendBinary.

// EncodeWire implements WireStore.
func (s *XMLMessageStore) EncodeWire(payload any) ([]byte, error) {
	doc, ok := payload.([]byte)
	if !ok {
		return nil, fmt.Errorf("rep: xml store: wire payload is %T", payload)
	}
	return doc, nil
}

// DecodeWire implements WireStore.
func (s *XMLMessageStore) DecodeWire(data []byte) (any, error) {
	return data, nil
}

// EncodeWire implements WireStore.
func (s *BinserStore) EncodeWire(payload any) ([]byte, error) {
	data, ok := payload.([]byte)
	if !ok {
		return nil, fmt.Errorf("rep: binser store: wire payload is %T", payload)
	}
	return data, nil
}

// DecodeWire implements WireStore.
func (s *BinserStore) DecodeWire(data []byte) (any, error) {
	return data, nil
}

// EncodeWire implements WireStore.
func (s *GobStore) EncodeWire(payload any) ([]byte, error) {
	data, ok := payload.([]byte)
	if !ok {
		return nil, fmt.Errorf("rep: gob store: wire payload is %T", payload)
	}
	return data, nil
}

// DecodeWire implements WireStore.
func (s *GobStore) DecodeWire(data []byte) (any, error) {
	return data, nil
}

// EncodeWire implements WireStore. One flag byte (multiref) precedes
// the sequence's binary form.
func (s *CompactSAXStore) EncodeWire(payload any) ([]byte, error) {
	p, ok := payload.(*compactSAXPayload)
	if !ok {
		return nil, fmt.Errorf("rep: compact sax store: wire payload is %T", payload)
	}
	flag := byte(0)
	if p.multiRef {
		flag = 1
	}
	return p.seq.AppendBinary([]byte{flag}), nil
}

// DecodeWire implements WireStore.
func (s *CompactSAXStore) DecodeWire(data []byte) (any, error) {
	if len(data) < 1 || data[0] > 1 {
		return nil, fmt.Errorf("rep: compact sax store: malformed wire payload")
	}
	seq, err := sax.DecodeCompactSequence(data[1:])
	if err != nil {
		return nil, fmt.Errorf("rep: compact sax store: %w", err)
	}
	return &compactSAXPayload{seq: seq, multiRef: data[0] == 1}, nil
}

var (
	_ WireStore = (*XMLMessageStore)(nil)
	_ WireStore = (*BinserStore)(nil)
	_ WireStore = (*GobStore)(nil)
	_ WireStore = (*CompactSAXStore)(nil)
)
