package rep

// RepresentationInfo is one row of the paper's descriptive matrices:
// Table 2 (cache key representations) and Table 3 (cache value
// representations), with each method's limitation.
type RepresentationInfo struct {
	Representation string
	Method         string
	Limitation     string
}

// KeyRepresentations returns the Table 2 matrix for this
// implementation.
func KeyRepresentations() []RepresentationInfo {
	return []RepresentationInfo{
		{
			Representation: "XML message",
			Method:         "Not required (request is serialized on every lookup)",
			Limitation:     "None",
		},
		{
			Representation: "Application object",
			Method:         "Binary serialization (Go analog of Java serialization)",
			Limitation:     "Serializable object graph (registered bean types)",
		},
		{
			Representation: "Application object",
			Method:         "String concatenation (Go analog of toString)",
			Limitation:     "Primitive parameters or fmt.Stringer implementations",
		},
	}
}

// ValueRepresentations returns the Table 3 matrix for this
// implementation.
func ValueRepresentations() []RepresentationInfo {
	return []RepresentationInfo{
		{
			Representation: "XML message",
			Method:         "Not required (parsed and deserialized on every hit)",
			Limitation:     "None",
		},
		{
			Representation: "SAX events sequence",
			Method:         "Not required (replayed into the deserializer on every hit)",
			Limitation:     "None",
		},
		{
			Representation: "Application object",
			Method:         "Binary serialization (Go analog of Java serialization)",
			Limitation:     "Serializable object graph (registered bean types)",
		},
		{
			Representation: "Application object",
			Method:         "Copy by reflection",
			Limitation:     "Bean/array object graphs (all fields exported)",
		},
		{
			Representation: "Application object",
			Method:         "Copy by clone (CloneDeep)",
			Limitation:     "Cloner implementations (generated classes)",
		},
		{
			Representation: "Application object",
			Method:         "None (pass by reference)",
			Limitation:     "Read-only or immutable objects only",
		},
		{
			Representation: "Serialized response bytes",
			Method:         "Not required (exact bytes replayed to the writer)",
			Limitation:     "Stream-accepting consumers only (hit yields bytes, not an object)",
		},
		{
			Representation: "XML splice template",
			Method:         "Differential serialization (shared skeleton, spliced text values)",
			Limitation:     "Stream-accepting consumers; wins when response shapes repeat",
		},
	}
}
