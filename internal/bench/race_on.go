//go:build race

package bench

// raceEnabled reports that the race detector is active; timing
// assertions relax their factors because instrumentation skews costs.
const raceEnabled = true
