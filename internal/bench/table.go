package bench

import (
	"fmt"
	"strings"
)

// Cell is one table cell: a measured value or "n/a" where the paper
// marks the method inapplicable to the operation's result type.
type Cell struct {
	Value     float64
	Unit      string
	NotApplic bool
}

// String formats the cell.
func (c Cell) String() string {
	if c.NotApplic {
		return "n/a"
	}
	switch c.Unit {
	case "ms":
		return fmt.Sprintf("%.4f", c.Value)
	case "bytes":
		return fmt.Sprintf("%.0f", c.Value)
	default:
		return fmt.Sprintf("%.4f", c.Value)
	}
}

// Row is one table row: a method and its per-operation cells.
type Row struct {
	Name  string
	Cells []Cell
}

// Table is a rendered experiment table.
type Table struct {
	ID      string // e.g. "Table 6"
	Title   string
	Unit    string
	Columns []string
	Rows    []Row
}

// Format renders the table as aligned text, in the layout of the
// paper's tables: methods as rows, operations as columns.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s. %s (%s)\n", t.ID, t.Title, t.Unit)

	widths := make([]int, len(t.Columns)+1)
	widths[0] = len("method")
	for _, r := range t.Rows {
		if len(r.Name) > widths[0] {
			widths[0] = len(r.Name)
		}
	}
	for j, col := range t.Columns {
		widths[j+1] = len(col)
		for _, r := range t.Rows {
			if s := r.Cells[j].String(); len(s) > widths[j+1] {
				widths[j+1] = len(s)
			}
		}
	}

	pad := func(s string, w int) string {
		if len(s) >= w {
			return s
		}
		return s + strings.Repeat(" ", w-len(s))
	}

	b.WriteString(pad("", widths[0]))
	for j, col := range t.Columns {
		b.WriteString("  ")
		b.WriteString(pad(col, widths[j+1]))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(pad(r.Name, widths[0]))
		for j := range t.Columns {
			b.WriteString("  ")
			b.WriteString(pad(r.Cells[j].String(), widths[j+1]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as comma-separated values for plotting.
func (t *Table) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "table,%s,%s\n", csvQuote(t.ID), csvQuote(t.Title))
	b.WriteString("method")
	for _, col := range t.Columns {
		b.WriteByte(',')
		b.WriteString(csvQuote(col))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(csvQuote(r.Name))
		for _, c := range r.Cells {
			b.WriteByte(',')
			if c.NotApplic {
				b.WriteString("n/a")
			} else {
				b.WriteString(c.String())
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// csvQuote quotes a field when needed.
func csvQuote(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// CSVFigure renders figure series as CSV rows:
// method,metric,ratio,value.
func CSVFigure(series []FigureSeries) string {
	var b strings.Builder
	b.WriteString("method,metric,hit_ratio,value\n")
	for _, s := range series {
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%s,throughput_rps,%.2f,%.1f\n", csvQuote(s.Store), p.HitRatio, p.Throughput)
			fmt.Fprintf(&b, "%s,avg_latency_ms,%.2f,%.4f\n", csvQuote(s.Store), p.HitRatio,
				float64(p.AvgLatency.Microseconds())/1000.0)
		}
	}
	return b.String()
}

// CellFor returns the cell at (rowName, colIdx) for test assertions.
func (t *Table) CellFor(rowName string, col int) (Cell, bool) {
	for _, r := range t.Rows {
		if r.Name == rowName && col < len(r.Cells) {
			return r.Cells[col], true
		}
	}
	return Cell{}, false
}
