// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (Section 5): the
// micro-benchmarks for cache-key generation (Table 6), cached-data
// retrieval (Table 7), and memory sizes (Tables 8 and 9), plus the
// portal-site scenario sweeps (Figures 3 and 4). The cmd/wscache-bench
// and cmd/portalbench binaries and the repository-level Go benchmarks
// are thin wrappers over this package.
package bench

import (
	"context"
	"fmt"

	"repro/internal/client"
	"repro/internal/googleapi"
	"repro/internal/sax"
	"repro/internal/soap"
	"repro/internal/typemap"
)

// OpFixture is one Google operation prepared for measurement: its
// request parameters and a fully captured invocation (result object,
// response XML, recorded SAX events) as the client middleware would
// hold them at cache-fill time.
type OpFixture struct {
	// Op is the operation name.
	Op string
	// Label is the short column head used in the paper's tables.
	Label string
	// Params are the request parameters (Table 5 shapes).
	Params []soap.Param
	// Ctx is the fabricated post-invocation context.
	Ctx *client.Context
}

// Env bundles the registry, codec and the three operation fixtures.
type Env struct {
	Reg   *typemap.Registry
	Codec *soap.Codec
	Ops   []OpFixture
}

// NewEnv builds the measurement environment: the three Google
// operations with deterministic synthetic responses.
func NewEnv() (*Env, error) {
	reg := typemap.NewRegistry()
	if err := googleapi.RegisterTypes(reg); err != nil {
		return nil, err
	}
	codec := soap.NewCodec(reg)
	e := &Env{Reg: reg, Codec: codec}

	fixtures := []struct {
		op     string
		label  string
		params []soap.Param
		result any
	}{
		{
			op:     googleapi.OpSpellingSuggestion,
			label:  "Spelling Suggestion",
			params: googleapi.SpellingParams("benchmark-key", "web servises cashing"),
			result: googleapi.SpellingSuggestion("web servises cashing"),
		},
		{
			op:     googleapi.OpGetCachedPage,
			label:  "Cached Page",
			params: googleapi.CachedPageParams("benchmark-key", "http://example.com/fixed"),
			result: googleapi.CachedPage("http://example.com/fixed"),
		},
		{
			op:     googleapi.OpGoogleSearch,
			label:  "Google Search",
			params: googleapi.SearchParams("benchmark-key", "fixed query", 0, 10, false, "", false, ""),
			result: googleapi.Search("fixed query", 0, 10),
		},
	}
	for _, f := range fixtures {
		ictx, err := e.fabricate(f.op, f.params, f.result)
		if err != nil {
			return nil, fmt.Errorf("bench: fixture %s: %w", f.op, err)
		}
		e.Ops = append(e.Ops, OpFixture{Op: f.op, Label: f.label, Params: f.params, Ctx: ictx})
	}
	return e, nil
}

// fabricate builds a post-invocation context exactly as the pivot
// handler populates one.
func (e *Env) fabricate(op string, params []soap.Param, result any) (*client.Context, error) {
	respXML, err := e.Codec.EncodeResponse(googleapi.Namespace, op, result)
	if err != nil {
		return nil, err
	}
	events, err := sax.Record(respXML)
	if err != nil {
		return nil, err
	}
	return &client.Context{
		//lint:ignore ctxflow fabricated post-invocation record for benchmarks; there is no live call whose context it could inherit
		Ctx:            context.Background(),
		Endpoint:       googleapi.Endpoint,
		Namespace:      googleapi.Namespace,
		Operation:      op,
		Params:         params,
		RequestXML:     nil,
		ResponseXML:    respXML,
		ResponseEvents: events,
		Result:         result,
	}, nil
}

// Fixture returns the fixture for an operation name.
func (e *Env) Fixture(op string) (*OpFixture, bool) {
	for i := range e.Ops {
		if e.Ops[i].Op == op {
			return &e.Ops[i], true
		}
	}
	return nil, false
}
