package bench

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/googleapi"
)

func testEnv(t *testing.T) *Env {
	t.Helper()
	e, err := NewEnv()
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEnvFixtures(t *testing.T) {
	e := testEnv(t)
	if len(e.Ops) != 3 {
		t.Fatalf("ops = %d", len(e.Ops))
	}
	for _, op := range e.Ops {
		if op.Ctx.Result == nil || len(op.Ctx.ResponseXML) == 0 || len(op.Ctx.ResponseEvents) == 0 {
			t.Errorf("%s fixture incomplete", op.Op)
		}
	}
	if _, ok := e.Fixture(googleapi.OpGoogleSearch); !ok {
		t.Error("Fixture lookup failed")
	}
	if _, ok := e.Fixture("nope"); ok {
		t.Error("bogus fixture found")
	}
}

// iters trades speed against timing stability: enough iterations that
// orderings are reliable, far fewer than the paper's 10,000.
const iters = 2000

func TestTable6ShapeAndOrdering(t *testing.T) {
	e := testEnv(t)
	tab, err := e.Table6(iters)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 || len(tab.Columns) != 3 {
		t.Fatalf("table shape %dx%d", len(tab.Rows), len(tab.Columns))
	}
	// Paper shape: the XML-message key is the slowest by a wide margin;
	// the string key is the fastest. The serialization key sits between
	// them in the paper; here it can tie the string key (both are a few
	// hundred nanoseconds), so the assertion allows a near-tie — with
	// headroom, because under full-suite load on a single CPU the two
	// sub-microsecond timings jitter past a tight 2x bound.
	// The race detector inflates costs unevenly; only the raw ordering
	// is asserted under -race.
	xmlFactor, strFactor, tieFactor := 2.0, 4.0, 3.0
	if raceEnabled {
		xmlFactor, strFactor, tieFactor = 1.0, 1.0, 4.0
	}
	for col := range tab.Columns {
		xml, _ := tab.CellFor("XML message", col)
		ser, _ := tab.CellFor("Binary serialization", col)
		str, _ := tab.CellFor("String concatenation", col)
		if xml.Value < xmlFactor*ser.Value {
			t.Errorf("col %d: xml key %.5f not ≫ serialization key %.5f", col, xml.Value, ser.Value)
		}
		if xml.Value < strFactor*str.Value {
			t.Errorf("col %d: xml key %.5f not ≫ string key %.5f", col, xml.Value, str.Value)
		}
		if str.Value > tieFactor*ser.Value {
			t.Errorf("col %d: string key %.5f slower than serialization key %.5f", col, str.Value, ser.Value)
		}
	}
}

func TestTable7ShapeAndOrdering(t *testing.T) {
	e := testEnv(t)
	tab, err := e.Table7(iters)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}

	// n/a cells match the paper.
	if c, _ := tab.CellFor("Copy by reflection", 0); !c.NotApplic {
		t.Error("reflection on string should be n/a")
	}
	if c, _ := tab.CellFor("Copy by clone", 0); !c.NotApplic {
		t.Error("clone on string should be n/a")
	}
	if c, _ := tab.CellFor("Copy by clone", 1); !c.NotApplic {
		t.Error("clone on bytes should be n/a")
	}

	// Paper ordering for GoogleSearch (col 2): ref < clone < reflect <
	// gob < sax < xml.
	get := func(name string) float64 {
		c, ok := tab.CellFor(name, 2)
		if !ok || c.NotApplic {
			t.Fatalf("missing cell %s", name)
		}
		return c.Value
	}
	ref := get("Pass by reference")
	clone := get("Copy by clone")
	refl := get("Copy by reflection")
	ser := get("Binary serialization")
	saxT := get("SAX events sequence")
	xml := get("XML message")
	if !(ref < clone && clone < refl && refl < ser && ser < saxT && saxT < xml) {
		t.Errorf("ordering violated: ref %.5f clone %.5f reflect %.5f ser %.5f sax %.5f xml %.5f",
			ref, clone, refl, ser, saxT, xml)
	}
}

func TestTable8Shape(t *testing.T) {
	e := testEnv(t)
	tab, err := e.Table8()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: concatenated string keys are the smallest, XML the
	// largest, for every operation.
	for col := range tab.Columns {
		xml, _ := tab.CellFor("XML message", col)
		ser, _ := tab.CellFor("Binary serialization", col)
		str, _ := tab.CellFor("String concatenation", col)
		if !(str.Value < ser.Value && ser.Value < xml.Value) {
			t.Errorf("col %d sizes: str %.0f ser %.0f xml %.0f", col, str.Value, ser.Value, xml.Value)
		}
	}
}

func TestTable9Shape(t *testing.T) {
	e := testEnv(t)
	tab, err := e.Table9()
	if err != nil {
		t.Fatal(err)
	}
	// Spelling (col 0) and search (col 2): object much smaller than
	// XML. CachedPage (col 1): all representations are dominated by
	// the byte array, so sizes are comparable (paper's observation).
	for _, col := range []int{0, 2} {
		xml, _ := tab.CellFor("XML message", col)
		obj, _ := tab.CellFor("Application object", col)
		if obj.Value >= xml.Value {
			t.Errorf("col %d: object %.0f not smaller than XML %.0f", col, obj.Value, xml.Value)
		}
	}
	xml, _ := tab.CellFor("XML message", 1)
	obj, _ := tab.CellFor("Application object", 1)
	if obj.Value < xml.Value/2 || obj.Value > xml.Value*2 {
		t.Errorf("cached page sizes should be comparable: obj %.0f xml %.0f", obj.Value, xml.Value)
	}
}

func TestTableFormat(t *testing.T) {
	e := testEnv(t)
	tab, err := e.Table8()
	if err != nil {
		t.Fatal(err)
	}
	out := tab.Format()
	for _, want := range []string{"Table 8", "Spelling Suggestion", "XML message"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	e := testEnv(t)
	tab, err := e.Table8()
	if err != nil {
		t.Fatal(err)
	}
	csv := tab.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 5 { // header, columns, 3 rows
		t.Fatalf("csv lines = %d:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "table,Table 8") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "XML message,") {
		t.Errorf("row = %q", lines[2])
	}
}

func TestCSVQuote(t *testing.T) {
	if csvQuote("plain") != "plain" {
		t.Error("plain quoted")
	}
	if csvQuote(`has,comma`) != `"has,comma"` {
		t.Error("comma not quoted")
	}
	if csvQuote(`has"quote`) != `"has""quote"` {
		t.Error("quote not doubled")
	}
}

func TestCSVFigure(t *testing.T) {
	series := []FigureSeries{{
		Store: "Pass by Reference",
		Points: []FigurePoint{
			{HitRatio: 0, Throughput: 100, AvgLatency: 2 * time.Millisecond},
			{HitRatio: 1, Throughput: 900, AvgLatency: 100 * time.Microsecond},
		},
	}}
	csv := CSVFigure(series)
	for _, want := range []string{
		"method,metric,hit_ratio,value",
		"Pass by Reference,throughput_rps,0.00,100.0",
		"Pass by Reference,avg_latency_ms,1.00,0.1000",
	} {
		if !strings.Contains(csv, want) {
			t.Errorf("csv missing %q:\n%s", want, csv)
		}
	}
}

func TestFigureUnknownOperation(t *testing.T) {
	if _, err := FigureContext(context.Background(), FigureConfig{Operation: "noSuchOp", RequestsPerPoint: 1}); err == nil {
		t.Error("unknown operation accepted")
	}
}

func TestFigureSpellingOperation(t *testing.T) {
	if testing.Short() {
		t.Skip("portal sweep is slow")
	}
	series, err := FigureContext(context.Background(), FigureConfig{
		Concurrency:      1,
		RequestsPerPoint: 20,
		HitRatios:        []float64{1.0},
		Stores:           []StoreSpec{FigureStores()[5]},
		HotQueries:       1,
		Operation:        googleapi.OpSpellingSuggestion,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 || series[0].Points[0].Throughput <= 0 {
		t.Errorf("series = %+v", series)
	}
}

func TestFigureSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("portal sweep is slow")
	}
	series, err := FigureContext(context.Background(), FigureConfig{
		Concurrency:      2,
		RequestsPerPoint: 40,
		HitRatios:        []float64{0, 1.0},
		Stores: []StoreSpec{
			FigureStores()[0], // XML
			FigureStores()[5], // Ref
		},
		HotQueries: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 || len(series[0].Points) != 2 {
		t.Fatalf("series shape wrong: %+v", series)
	}
	// At 100% hits every method must beat its own 0% throughput.
	for _, s := range series {
		if s.Points[1].Throughput <= s.Points[0].Throughput {
			t.Errorf("%s: 100%% hits (%.0f rps) not faster than 0%% (%.0f rps)",
				s.Store, s.Points[1].Throughput, s.Points[0].Throughput)
		}
	}
	// Pass-by-reference at 100% must beat XML at 100%.
	if series[1].Points[1].Throughput <= series[0].Points[1].Throughput {
		t.Errorf("ref (%.0f rps) not faster than xml (%.0f rps) at 100%%",
			series[1].Points[1].Throughput, series[0].Points[1].Throughput)
	}

	out := FormatFigure("Figure 3", "Portal throughput and response time", series)
	if !strings.Contains(out, "Throughput") || !strings.Contains(out, "Pass by Reference") {
		t.Errorf("figure format:\n%s", out)
	}
}
