package bench

import (
	"fmt"
	"time"

	"repro/internal/googleapi"
	"repro/internal/memsize"
	"repro/internal/rep"
	"repro/internal/sax"
)

// DefaultIterations matches the paper's measurement loop: "the total
// time to perform 10,000 iterations for each method was measured",
// after an equal warm-up pass.
const DefaultIterations = 10_000

// keyGenerators returns the Table 6 rows in paper order.
func (e *Env) keyGenerators() []rep.KeyGenerator {
	return []rep.KeyGenerator{
		rep.NewXMLMessageKey(e.Codec),
		rep.NewBinserKey(e.Reg),
		rep.NewStringKey(),
	}
}

// valueStoreRow pairs a store with its per-operation applicability,
// mirroring the n/a cells of the paper's Table 7.
type valueStoreRow struct {
	store      rep.ValueStore
	applicable map[string]bool // nil means applicable to all
}

// valueStores returns the Table 7 rows in paper order. Applicability
// follows the paper: reflection copy does not apply to the plain
// string result (immutable, not a bean); clone copy applies only to
// the generated GoogleSearchResult class.
func (e *Env) valueStores() []valueStoreRow {
	return []valueStoreRow{
		{store: rep.NewXMLMessageStore(e.Codec)},
		{store: rep.NewSAXEventsStore(e.Codec)},
		{store: rep.NewBinserStore(e.Reg)},
		{
			store: rep.NewReflectCopyStore(e.Reg),
			applicable: map[string]bool{
				googleapi.OpGetCachedPage: true,
				googleapi.OpGoogleSearch:  true,
			},
		},
		{
			store: rep.NewCloneCopyStore(),
			applicable: map[string]bool{
				googleapi.OpGoogleSearch: true,
			},
		},
		{store: rep.NewRefStore(e.Reg, true)},
	}
}

// Table6 measures cache-key generation time per method per operation.
func (e *Env) Table6(iterations int) (*Table, error) {
	t := &Table{
		ID:    "Table 6",
		Title: "Processing times for cache key generation",
		Unit:  "msec",
	}
	for _, op := range e.Ops {
		t.Columns = append(t.Columns, op.Label)
	}
	for _, g := range e.keyGenerators() {
		row := Row{Name: g.Name()}
		for _, op := range e.Ops {
			// Warm-up pass, then the measured pass (the paper excludes
			// JIT compilation; we exclude cold caches and lazy init).
			if _, err := g.Key(op.Ctx); err != nil {
				return nil, fmt.Errorf("bench: table 6: %s/%s: %w", g.Name(), op.Op, err)
			}
			perCall, err := timeIt(iterations, func() error {
				_, err := g.Key(op.Ctx)
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("bench: table 6: %s/%s: %w", g.Name(), op.Op, err)
			}
			row.Cells = append(row.Cells, Cell{Value: perCall, Unit: "ms"})
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Table7 measures cached-data retrieval time (ValueStore.Load) per
// representation per operation.
func (e *Env) Table7(iterations int) (*Table, error) {
	t := &Table{
		ID:    "Table 7",
		Title: "Processing times for cached data retrieval",
		Unit:  "msec",
	}
	for _, op := range e.Ops {
		t.Columns = append(t.Columns, op.Label)
	}
	for _, vr := range e.valueStores() {
		row := Row{Name: vr.store.Name()}
		for _, op := range e.Ops {
			if vr.applicable != nil && !vr.applicable[op.Op] {
				row.Cells = append(row.Cells, Cell{NotApplic: true, Unit: "ms"})
				continue
			}
			payload, _, err := vr.store.Store(op.Ctx)
			if err != nil {
				return nil, fmt.Errorf("bench: table 7: %s/%s store: %w", vr.store.Name(), op.Op, err)
			}
			if _, err := vr.store.Load(payload); err != nil {
				return nil, fmt.Errorf("bench: table 7: %s/%s warmup: %w", vr.store.Name(), op.Op, err)
			}
			perCall, err := timeIt(iterations, func() error {
				_, err := vr.store.Load(payload)
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("bench: table 7: %s/%s: %w", vr.store.Name(), op.Op, err)
			}
			row.Cells = append(row.Cells, Cell{Value: perCall, Unit: "ms"})
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Table8 measures the memory size of cache keys per representation.
func (e *Env) Table8() (*Table, error) {
	t := &Table{
		ID:    "Table 8",
		Title: "Memory size of cache keys",
		Unit:  "bytes",
	}
	for _, op := range e.Ops {
		t.Columns = append(t.Columns, op.Label)
	}
	for _, g := range e.keyGenerators() {
		row := Row{Name: g.Name()}
		for _, op := range e.Ops {
			key, err := g.Key(op.Ctx)
			if err != nil {
				return nil, fmt.Errorf("bench: table 8: %s/%s: %w", g.Name(), op.Op, err)
			}
			row.Cells = append(row.Cells, Cell{Value: float64(len(key)), Unit: "bytes"})
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Table9 measures the memory size of cached values per representation:
// the XML message, the serialized form, and the application object
// itself (the paper's three rows), plus the SAX event sequence as an
// extra row the paper discusses but does not size.
func (e *Env) Table9() (*Table, error) {
	t := &Table{
		ID:    "Table 9",
		Title: "Memory size of cached objects",
		Unit:  "bytes",
	}
	for _, op := range e.Ops {
		t.Columns = append(t.Columns, op.Label)
	}

	rows := []struct {
		name string
		size func(op *OpFixture) (int, error)
	}{
		{"XML message", func(op *OpFixture) (int, error) {
			return len(op.Ctx.ResponseXML), nil
		}},
		{"Serialized form", func(op *OpFixture) (int, error) {
			_, size, err := rep.NewBinserStore(e.Reg).Store(op.Ctx)
			return size, err
		}},
		{"Application object", func(op *OpFixture) (int, error) {
			return memsize.Of(op.Ctx.Result), nil
		}},
		{"SAX events sequence", func(op *OpFixture) (int, error) {
			return sax.SequenceMemSize(op.Ctx.ResponseEvents), nil
		}},
	}
	for _, r := range rows {
		row := Row{Name: r.name}
		for i := range e.Ops {
			size, err := r.size(&e.Ops[i])
			if err != nil {
				return nil, fmt.Errorf("bench: table 9: %s/%s: %w", r.name, e.Ops[i].Op, err)
			}
			row.Cells = append(row.Cells, Cell{Value: float64(size), Unit: "bytes"})
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// timeIt runs f iterations times and returns milliseconds per call.
func timeIt(iterations int, f func() error) (float64, error) {
	start := time.Now()
	for i := 0; i < iterations; i++ {
		if err := f(); err != nil {
			return 0, err
		}
	}
	elapsed := time.Since(start)
	return float64(elapsed.Nanoseconds()) / float64(iterations) / 1e6, nil
}
