//go:build !race

package bench

// raceEnabled reports that the race detector is active.
const raceEnabled = false
