package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/googleapi"
	"repro/internal/loadgen"
	"repro/internal/obs"
	"repro/internal/portal"
	"repro/internal/rep"
	"repro/internal/soap"
	"repro/internal/transport"
	"repro/internal/typemap"
)

// StoreSpec names a cache value representation and builds it against a
// codec, so each figure series runs with a fresh cache (and, for the
// adaptive selector, a fresh cost model).
type StoreSpec struct {
	// Name is the legend label.
	Name string
	// Rep is the rep.Registry name the spec resolves ("sax",
	// "adaptive", ...); informational for hand-built specs.
	Rep   string
	Build func(reg *typemap.Registry, codec *soap.Codec) rep.ValueStore
}

// registrySpec resolves a representation by registry name, freshly per
// build so series never share state. Builtin names are known-good;
// resolution cannot fail for them.
func registrySpec(display, name string) StoreSpec {
	return StoreSpec{
		Name: display,
		Rep:  name,
		Build: func(r *typemap.Registry, c *soap.Codec) rep.ValueStore {
			store, err := rep.NewRegistry(r, c).Store(name)
			if err != nil {
				panic(fmt.Sprintf("bench: builtin representation %q: %v", name, err))
			}
			return store
		},
	}
}

// FigureStores returns the six series of Figures 3 and 4, in the
// paper's legend order, each resolved through the representation
// registry. Pass by reference is hand-built: the figure shares even
// mutable results (the portal never mutates them), where the
// registry's "ref" accepts only immutable types.
func FigureStores() []StoreSpec {
	return []StoreSpec{
		registrySpec("XML Message", "xml"),
		registrySpec("SAX Events Sequence", "sax"),
		registrySpec("Binary Serialization", "binser"),
		registrySpec("Copy by Reflection", "reflect"),
		registrySpec("Copy by Clone", "clone"),
		{Name: "Pass by Reference", Rep: "ref",
			Build: func(r *typemap.Registry, _ *soap.Codec) rep.ValueStore {
				return rep.NewRefStore(r, true)
			}},
	}
}

// AdaptiveSpec returns the measured-cost selector as a seventh series:
// not a paper curve, but the reproduction's own contribution, run
// against the same sweep for comparison.
func AdaptiveSpec() StoreSpec {
	return registrySpec("Adaptive (cost model)", "adaptive")
}

// StoreSpecByName resolves a series by legend label or registry name
// (case-insensitive): the six paper series, "adaptive", or any other
// name the representation registry knows.
func StoreSpecByName(name string) (StoreSpec, error) {
	specs := append(FigureStores(), AdaptiveSpec())
	for _, s := range specs {
		if strings.EqualFold(s.Name, name) || strings.EqualFold(s.Rep, name) {
			return s, nil
		}
	}
	// Fall back to the registry's own namespace ("dom", "gob", ...).
	probe := rep.NewRegistry(typemap.NewRegistry(), nil)
	if spec, err := probe.ValueSpecFor(name); err == nil {
		return registrySpec(spec.Store.Name(), spec.Name), nil
	}
	if strings.EqualFold(name, "auto") {
		return registrySpec("Static classifier (auto)", "auto"), nil
	}
	return StoreSpec{}, fmt.Errorf("bench: no cache representation named %q", name)
}

// FigurePoint is one measurement: a hit ratio and the portal's
// throughput and average response time there.
type FigurePoint struct {
	HitRatio   float64
	Throughput float64
	AvgLatency time.Duration
}

// FigureSeries is one store's curve across the hit-ratio sweep.
type FigureSeries struct {
	Store  string
	Points []FigurePoint
}

// FigureConfig configures a portal-scenario sweep.
type FigureConfig struct {
	// Concurrency is the number of simulated users: 1 for Figure 3,
	// 25 for Figure 4.
	Concurrency int
	// RequestsPerPoint is the number of portal page requests measured
	// at each hit ratio.
	RequestsPerPoint int
	// HitRatios are the swept ratios; nil means 0%..100% step 20%.
	HitRatios []float64
	// Stores are the series; nil means all six.
	Stores []StoreSpec
	// HotQueries is the number of distinct pre-warmed queries; at
	// least 1. More hot queries exercise a larger cache.
	HotQueries int
	// Operation selects the back-end operation under load; empty means
	// doGoogleSearch (the paper's choice — the spread between methods
	// is largest there).
	Operation string
	// Obs, when non-nil, is shared by every per-point stack (cache,
	// client, transport, portal), so a sweep's stage latencies and
	// hit/miss counters accumulate into one registry for inspection.
	// Note that the sweep builds a fresh cache per point; the merged
	// core counters describe the whole sweep, not one cell.
	Obs *obs.Registry
}

// Figure runs the portal-site scenario sweep of Section 5.2: a portal
// backed by the dummy Google service through the caching client, with
// the cache-hit ratio artificially controlled by the request mix. The
// measured operation is doGoogleSearch (the paper's choice: the
// spread between methods is largest there), keys by string
// concatenation.
//
// Deprecated: Figure cannot be cancelled. Use FigureContext.
func Figure(cfg FigureConfig) ([]FigureSeries, error) {
	return FigureContext(context.Background(), cfg)
}

// FigureContext runs the sweep under the caller's context; cancelling
// ctx stops the load generator between requests and aborts the sweep.
func FigureContext(ctx context.Context, cfg FigureConfig) ([]FigureSeries, error) {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 1
	}
	if cfg.RequestsPerPoint <= 0 {
		cfg.RequestsPerPoint = 500
	}
	if cfg.HitRatios == nil {
		cfg.HitRatios = []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}
	}
	if cfg.Stores == nil {
		cfg.Stores = FigureStores()
	}
	if cfg.HotQueries <= 0 {
		cfg.HotQueries = 4
	}
	if cfg.Operation == "" {
		cfg.Operation = googleapi.OpGoogleSearch
	}
	if _, ok := operationParams(cfg.Operation); !ok {
		return nil, fmt.Errorf("bench: figure: unknown operation %q", cfg.Operation)
	}

	var out []FigureSeries
	for _, spec := range cfg.Stores {
		series := FigureSeries{Store: spec.Name}
		for _, ratio := range cfg.HitRatios {
			pt, err := figurePoint(ctx, cfg, spec, ratio)
			if err != nil {
				return nil, fmt.Errorf("bench: figure %s @%.0f%%: %w", spec.Name, ratio*100, err)
			}
			series.Points = append(series.Points, pt)
		}
		out = append(out, series)
	}
	return out, nil
}

// figurePoint measures one (store, hit ratio) cell with a fresh portal
// stack.
func figurePoint(ctx context.Context, cfg FigureConfig, spec StoreSpec, ratio float64) (FigurePoint, error) {
	disp, codec, err := googleapi.NewDispatcher()
	if err != nil {
		return FigurePoint{}, err
	}
	cache := core.MustNew(core.Config{
		KeyGen:     rep.NewStringKey(),
		Store:      spec.Build(codec.Registry(), codec),
		DefaultTTL: time.Hour,
		Obs:        cfg.Obs,
	})
	call := client.NewCall(codec, &transport.InProcess{Handler: disp, Obs: cfg.Obs},
		googleapi.Endpoint, googleapi.Namespace, cfg.Operation,
		"urn:GoogleSearchAction",
		client.Options{RecordEvents: true, Handlers: []client.Handler{cache}, Obs: cfg.Obs})

	params, _ := operationParams(cfg.Operation)
	site := portal.New(portal.Backend{
		Name:   "Back end",
		Call:   call,
		Params: params,
	})
	if cfg.Obs != nil {
		site.Instrument(cfg.Obs, nil)
	}

	hot := make([]string, cfg.HotQueries)
	for i := range hot {
		hot[i] = fmt.Sprintf("hot query %d", i)
	}
	// Pre-warm so hot queries hit from the first measured request.
	for _, q := range hot {
		if _, err := site.RenderContext(ctx, q); err != nil {
			return FigurePoint{}, err
		}
	}

	res, err := loadgen.RunContext(ctx, loadgen.Config{
		Concurrency: cfg.Concurrency,
		Requests:    cfg.RequestsPerPoint,
		HitRatio:    ratio,
		HotQueries:  hot,
		MissQuery:   func(i int) string { return fmt.Sprintf("miss query %d", i) },
		Do: func(q string) error {
			_, err := site.RenderContext(ctx, q)
			return err
		},
	})
	if err != nil {
		return FigurePoint{}, err
	}
	if res.Errors > 0 {
		return FigurePoint{}, fmt.Errorf("%d request errors", res.Errors)
	}
	return FigurePoint{HitRatio: ratio, Throughput: res.Throughput, AvgLatency: res.AvgLatency}, nil
}

// operationParams maps an operation name to its query→parameters
// builder.
func operationParams(op string) (func(q string) []soap.Param, bool) {
	switch op {
	case googleapi.OpGoogleSearch:
		return func(q string) []soap.Param {
			return googleapi.SearchParams("key", q, 0, 10, false, "", false, "")
		}, true
	case googleapi.OpSpellingSuggestion:
		return func(q string) []soap.Param {
			return googleapi.SpellingParams("key", q)
		}, true
	case googleapi.OpGetCachedPage:
		return func(q string) []soap.Param {
			return googleapi.CachedPageParams("key", "http://pages.example/"+q)
		}, true
	default:
		return nil, false
	}
}

// FormatFigure renders figure series as two aligned text tables
// (throughput and average response time), in the paper's layout:
// hit ratio columns, one row per cache method.
func FormatFigure(id, title string, series []FigureSeries) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s. %s\n", id, title)
	if len(series) == 0 {
		return b.String()
	}

	width := len("method")
	for _, s := range series {
		if len(s.Store) > width {
			width = len(s.Store)
		}
	}
	pad := func(s string, w int) string {
		if len(s) >= w {
			return s
		}
		return s + strings.Repeat(" ", w-len(s))
	}

	writeBlock := func(header string, cell func(FigurePoint) string) {
		b.WriteString(header)
		b.WriteByte('\n')
		b.WriteString(pad("method", width))
		for _, p := range series[0].Points {
			fmt.Fprintf(&b, "  %7s", fmt.Sprintf("%.0f%%", p.HitRatio*100))
		}
		b.WriteByte('\n')
		for _, s := range series {
			b.WriteString(pad(s.Store, width))
			for _, p := range s.Points {
				fmt.Fprintf(&b, "  %7s", cell(p))
			}
			b.WriteByte('\n')
		}
	}

	writeBlock("Throughput (requests/second) by cache-hit ratio:", func(p FigurePoint) string {
		return fmt.Sprintf("%.0f", p.Throughput)
	})
	b.WriteByte('\n')
	writeBlock("Average response time (msec) by cache-hit ratio:", func(p FigurePoint) string {
		return fmt.Sprintf("%.3f", float64(p.AvgLatency.Microseconds())/1000.0)
	})
	return b.String()
}
