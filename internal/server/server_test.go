package server

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/soap"
	"repro/internal/typemap"
)

const ns = "urn:Echo"

type pair struct {
	Key   string
	Value string
}

func newDispatcher(t *testing.T) (*Dispatcher, *soap.Codec) {
	t.Helper()
	reg := typemap.NewRegistry()
	if err := reg.Register(typemap.QName{Space: ns, Local: "Pair"}, pair{}); err != nil {
		t.Fatal(err)
	}
	codec := soap.NewCodec(reg)
	d := NewDispatcher(codec, ns)
	d.Register("echo", func(params []soap.Param) (any, error) {
		if len(params) == 0 {
			return nil, errors.New("echo requires one parameter")
		}
		return params[0].Value, nil
	})
	d.Register("makePair", func(params []soap.Param) (any, error) {
		k, _ := params[0].Value.(string)
		v, _ := params[1].Value.(string)
		return &pair{Key: k, Value: v}, nil
	})
	return d, codec
}

func TestDispatcherRoundTrip(t *testing.T) {
	d, codec := newDispatcher(t)
	req, err := codec.EncodeRequest(ns, "makePair", []soap.Param{
		{Name: "k", Value: "lang"},
		{Name: "v", Value: "go"},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, isFault, err := d.Handle(req)
	if err != nil || isFault {
		t.Fatalf("handle: %v fault=%v", err, isFault)
	}
	msg, err := codec.DecodeEnvelope(resp)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Wrapper.Local != "makePairResponse" {
		t.Errorf("wrapper = %v", msg.Wrapper)
	}
	p, ok := msg.Result().(*pair)
	if !ok || p.Key != "lang" || p.Value != "go" {
		t.Errorf("result = %#v", msg.Result())
	}
}

func TestDispatcherUnknownOperation(t *testing.T) {
	d, codec := newDispatcher(t)
	req, _ := codec.EncodeRequest(ns, "nope", nil)
	resp, isFault, err := d.Handle(req)
	if err != nil {
		t.Fatal(err)
	}
	if !isFault {
		t.Fatal("expected fault")
	}
	msg, err := codec.DecodeEnvelope(resp)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Fault == nil || !strings.Contains(msg.Fault.String, "unknown operation") {
		t.Errorf("fault = %+v", msg.Fault)
	}
	if msg.Fault.Code != "soapenv:Client" {
		t.Errorf("code = %q", msg.Fault.Code)
	}
}

func TestDispatcherHandlerError(t *testing.T) {
	d, codec := newDispatcher(t)
	req, _ := codec.EncodeRequest(ns, "echo", nil)
	resp, isFault, err := d.Handle(req)
	if err != nil || !isFault {
		t.Fatalf("err=%v fault=%v", err, isFault)
	}
	msg, _ := codec.DecodeEnvelope(resp)
	if msg.Fault == nil || msg.Fault.Code != "soapenv:Server" {
		t.Errorf("fault = %+v", msg.Fault)
	}
}

func TestDispatcherMalformedRequest(t *testing.T) {
	d, codec := newDispatcher(t)
	resp, isFault, err := d.Handle([]byte("this is not xml"))
	if err != nil || !isFault {
		t.Fatalf("err=%v fault=%v", err, isFault)
	}
	msg, _ := codec.DecodeEnvelope(resp)
	if msg.Fault == nil || !strings.Contains(msg.Fault.String, "malformed") {
		t.Errorf("fault = %+v", msg.Fault)
	}
}

func TestServeHTTP(t *testing.T) {
	d, codec := newDispatcher(t)
	srv := httptest.NewServer(d)
	defer srv.Close()

	req, _ := codec.EncodeRequest(ns, "echo", []soap.Param{{Name: "v", Value: "hi"}})
	resp, err := http.Post(srv.URL, "text/xml", bytes.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
	buf := new(bytes.Buffer)
	_, _ = buf.ReadFrom(resp.Body)
	msg, err := codec.DecodeEnvelope(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if msg.Result() != "hi" {
		t.Errorf("result = %#v", msg.Result())
	}
}

func TestServeHTTPFaultStatus500(t *testing.T) {
	d, codec := newDispatcher(t)
	srv := httptest.NewServer(d)
	defer srv.Close()
	req, _ := codec.EncodeRequest(ns, "doesNotExist", nil)
	resp, err := http.Post(srv.URL, "text/xml", bytes.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", resp.StatusCode)
	}
}

func TestServeHTTPMethodNotAllowed(t *testing.T) {
	d, _ := newDispatcher(t)
	srv := httptest.NewServer(d)
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestServeHTTPValidators(t *testing.T) {
	d, codec := newDispatcher(t)
	lastMod := time.Now().Add(-time.Hour).Truncate(time.Second)
	d.SetValidatorPolicy(lastMod, time.Minute)
	srv := httptest.NewServer(d)
	defer srv.Close()

	reqBody, _ := codec.EncodeRequest(ns, "echo", []soap.Param{{Name: "v", Value: "x"}})

	// Plain request gets validators stamped.
	resp, err := http.Post(srv.URL, "text/xml", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.Header.Get("Last-Modified") == "" || resp.Header.Get("Cache-Control") != "max-age=60" {
		t.Errorf("validators missing: %+v", resp.Header)
	}

	// Conditional request with a fresh validator gets 304.
	req, _ := http.NewRequest(http.MethodPost, srv.URL, bytes.NewReader(reqBody))
	req.Header.Set("If-Modified-Since", time.Now().UTC().Format(http.TimeFormat))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Errorf("status = %d, want 304", resp2.StatusCode)
	}
}

func TestDispatcherConcurrentRegisterAndHandle(t *testing.T) {
	d, codec := newDispatcher(t)
	req, _ := codec.EncodeRequest(ns, "echo", []soap.Param{{Name: "v", Value: "x"}})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			d.Register(fmt.Sprintf("op%d", i), func([]soap.Param) (any, error) { return nil, nil })
		}
	}()
	for i := 0; i < 200; i++ {
		if _, _, err := d.Handle(req); err != nil {
			t.Fatal(err)
		}
	}
	<-done
}
