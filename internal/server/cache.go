package server

import (
	"net/http"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
	"repro/internal/soap"
)

// ResponseCache is the server-side counterpart of the client cache: it
// stores fully encoded response envelopes keyed by the raw request
// body, so repeated identical requests skip decoding, the handler, and
// re-encoding. The paper's related-work section surveys this family
// (dynamic Web data caching at the server side); it composes with — and
// is orthogonal to — the client-side cache that is the paper's focus.
//
// Keying on raw request bytes requires byte-identical requests for a
// hit; SOAP clients (including this repository's) serialize
// deterministically, so equivalent calls from the same stack match.
// Clients with different prefix conventions simply miss and are served
// normally.
type ResponseCache struct {
	inner      *Dispatcher
	ttl        time.Duration
	maxEntries int
	cacheable  func(operation string) bool
	now        func() time.Time

	// reg backs the hit/miss counters (never nil; Config.Obs or a
	// private registry). timed gates stage latency recording, on only
	// when the caller supplied a registry or tracer.
	reg    *obs.Registry
	hits   *obs.Counter
	misses *obs.Counter
	tracer obs.Tracer
	timed  bool

	mu    sync.Mutex
	table map[string]*respEntry
	head  *respEntry
	tail  *respEntry
}

// respEntry is one cached encoded response, a node in the LRU list.
type respEntry struct {
	key        string
	body       []byte
	expires    time.Time
	prev, next *respEntry
}

// ResponseCacheConfig configures NewResponseCache.
type ResponseCacheConfig struct {
	// TTL bounds entry freshness; 0 means entries never expire.
	TTL time.Duration
	// MaxEntries bounds the table; 0 means 4096.
	MaxEntries int
	// Cacheable decides per operation; nil caches every operation.
	Cacheable func(operation string) bool
	// Clock overrides time.Now, for tests.
	Clock func() time.Time
	// Obs, when non-nil, is the registry the cache records its
	// server.hits / server.misses counters and server-side stage
	// latencies into; nil defaults to a private registry (counters are
	// still kept — Stats reads them — but latency histograms are
	// skipped and nothing is served).
	Obs *obs.Registry
	// Tracer, when non-nil, receives an OnStage callback per recorded
	// stage. Stage timing is on when either Obs or Tracer is set.
	Tracer obs.Tracer
}

// NewResponseCache wraps a Dispatcher with server-side response
// caching.
func NewResponseCache(inner *Dispatcher, cfg ResponseCacheConfig) *ResponseCache {
	maxEntries := cfg.MaxEntries
	if maxEntries <= 0 {
		maxEntries = 4096
	}
	now := clock.Or(cfg.Clock)
	reg := obs.Or(cfg.Obs)
	return &ResponseCache{
		inner:      inner,
		ttl:        cfg.TTL,
		maxEntries: maxEntries,
		cacheable:  cfg.Cacheable,
		now:        now,
		reg:        reg,
		hits:       reg.Counter("server.hits"),
		misses:     reg.Counter("server.misses"),
		tracer:     cfg.Tracer,
		timed:      cfg.Obs != nil || cfg.Tracer != nil,
		table:      make(map[string]*respEntry),
	}
}

// Stats returns (hits, misses), read from the metrics registry.
func (c *ResponseCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// observe records one timed stage; callers gate on c.timed.
func (c *ResponseCache) observe(op string, stage obs.Stage, d time.Duration, err error) {
	c.reg.Stage(stage, "", d, err)
	if c.tracer != nil {
		c.tracer.OnStage(op, stage, "", d, err)
	}
}

// Len returns the number of cached responses.
func (c *ResponseCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.table)
}

// Handle serves a request, from cache when possible. Faults are never
// cached.
func (c *ResponseCache) Handle(request []byte) ([]byte, bool, error) {
	op, err := soap.SniffOperation(request)
	if err != nil || op == "" || (c.cacheable != nil && !c.cacheable(op)) {
		return c.inner.Handle(request)
	}

	key := string(request)
	if body, ok := c.lookup(key, op); ok {
		return body, false, nil
	}

	body, isFault, err := c.inner.Handle(request)
	if err != nil || isFault {
		return body, isFault, err
	}
	c.store(key, op, body)
	return body, false, nil
}

// lookup returns a fresh cached response; op names the operation for
// stage attribution.
func (c *ResponseCache) lookup(key, op string) ([]byte, bool) {
	var start time.Time
	if c.timed {
		start = c.now()
	}
	body, ok := c.lookupEntry(key)
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	if c.timed {
		c.observe(op, obs.StageServerLookup, c.now().Sub(start), nil)
	}
	return body, ok
}

// lookupEntry finds a fresh entry under the lock.
func (c *ResponseCache) lookupEntry(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.table[key]
	if !ok {
		return nil, false
	}
	if !e.expires.IsZero() && c.now().After(e.expires) {
		c.removeLocked(e)
		return nil, false
	}
	c.moveToFrontLocked(e)
	return e.body, true
}

// store inserts a response; op names the operation for stage
// attribution.
func (c *ResponseCache) store(key, op string, body []byte) {
	var start time.Time
	if c.timed {
		start = c.now()
	}
	c.storeEntry(key, body)
	if c.timed {
		c.observe(op, obs.StageServerStore, c.now().Sub(start), nil)
	}
}

// storeEntry copies and inserts the response body.
func (c *ResponseCache) storeEntry(key string, body []byte) {
	var expires time.Time
	if c.ttl > 0 {
		expires = c.now().Add(c.ttl)
	}
	cp := make([]byte, len(body))
	copy(cp, body)

	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.table[key]; ok {
		c.removeLocked(old)
	}
	e := &respEntry{key: key, body: cp, expires: expires}
	c.table[key] = e
	c.pushFrontLocked(e)
	for len(c.table) > c.maxEntries && c.tail != nil {
		c.removeLocked(c.tail)
	}
}

// ServeHTTP adapts the caching handler to HTTP, mirroring
// Dispatcher.ServeHTTP (including validator behaviour).
func (c *ResponseCache) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	serveSOAP(w, r, c.inner, c.Handle)
}

// LRU plumbing (same shape as the client cache's, duplicated to keep
// the packages independent).

func (c *ResponseCache) pushFrontLocked(e *respEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *ResponseCache) moveToFrontLocked(e *respEntry) {
	if c.head == e {
		return
	}
	c.unlinkLocked(e)
	c.pushFrontLocked(e)
}

func (c *ResponseCache) removeLocked(e *respEntry) {
	delete(c.table, e.key)
	c.unlinkLocked(e)
	e.body = nil
}

func (c *ResponseCache) unlinkLocked(e *respEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
