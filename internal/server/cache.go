package server

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
	"repro/internal/soap"
)

// BodyStore is the resident representation for cached response bodies.
// It is declared here (consumer-side) rather than imported so the
// server package stays independent of the client stack; the rep
// package's body stores (rep.RawBodyStore, rep.CompactBodyStore — see
// rep.BodyStoreFor) satisfy it structurally.
type BodyStore interface {
	// Name identifies the representation in reports and flags.
	Name() string
	// Store converts an encoded response body into the cached payload
	// and reports its resident size. The body must not be retained.
	Store(body []byte) (payload any, size int, err error)
	// Load materializes the encoded body from a payload.
	Load(payload any) ([]byte, error)
}

// BodyStreamer is the optional BodyStore extension for the zero-copy
// hit path: WriteBody replays a cached payload straight into the
// response writer, skipping Load's []byte materialization. Declared
// consumer-side like BodyStore; rep's body stores satisfy it
// structurally. When the configured store implements it, ServeHTTP
// serves hits by streaming.
type BodyStreamer interface {
	WriteBody(payload any, w io.Writer) (int64, error)
}

// rawBody is the default BodyStore: the encoded bytes as-is.
type rawBody struct{}

func (rawBody) Name() string { return "Raw bytes" }

func (rawBody) Store(body []byte) (any, int, error) {
	cp := make([]byte, len(body))
	copy(cp, body)
	return cp, len(cp), nil
}

func (rawBody) Load(payload any) ([]byte, error) {
	body, ok := payload.([]byte)
	if !ok {
		return nil, fmt.Errorf("server: raw body payload is %T", payload)
	}
	return body, nil
}

// WriteBody implements BodyStreamer: a hit is one write of the cached
// bytes, so even the default configuration takes the streaming path.
func (rawBody) WriteBody(payload any, w io.Writer) (int64, error) {
	body, ok := payload.([]byte)
	if !ok {
		return 0, fmt.Errorf("server: raw body payload is %T", payload)
	}
	n, err := w.Write(body)
	return int64(n), err
}

// ResponseCache is the server-side counterpart of the client cache: it
// stores fully encoded response envelopes keyed by the raw request
// body, so repeated identical requests skip decoding, the handler, and
// re-encoding. The paper's related-work section surveys this family
// (dynamic Web data caching at the server side); it composes with — and
// is orthogonal to — the client-side cache that is the paper's focus.
//
// Keying on raw request bytes requires byte-identical requests for a
// hit; SOAP clients (including this repository's) serialize
// deterministically, so equivalent calls from the same stack match.
// Clients with different prefix conventions simply miss and are served
// normally.
type ResponseCache struct {
	inner      *Dispatcher
	ttl        time.Duration
	maxEntries int
	cacheable  func(operation string) bool
	now        func() time.Time
	body       BodyStore

	// reg backs the hit/miss counters (never nil; Config.Obs or a
	// private registry). timed gates stage latency recording, on only
	// when the caller supplied a registry or tracer.
	reg    *obs.Registry
	hits   *obs.Counter
	misses *obs.Counter
	tracer obs.Tracer
	timed  bool

	mu    sync.Mutex
	table map[string]*respEntry
	head  *respEntry
	tail  *respEntry
}

// respEntry is one cached encoded response, a node in the LRU list. The
// payload is whatever the configured BodyStore produced from the
// encoded body (raw bytes by default).
type respEntry struct {
	key        string
	payload    any
	expires    time.Time
	prev, next *respEntry
}

// ResponseCacheConfig configures NewResponseCache.
type ResponseCacheConfig struct {
	// TTL bounds entry freshness; 0 means entries never expire.
	TTL time.Duration
	// MaxEntries bounds the table; 0 means 4096.
	MaxEntries int
	// Cacheable decides per operation; nil caches every operation.
	Cacheable func(operation string) bool
	// Clock overrides time.Now, for tests.
	Clock func() time.Time
	// Obs, when non-nil, is the registry the cache records its
	// server.hits / server.misses counters and server-side stage
	// latencies into; nil defaults to a private registry (counters are
	// still kept — Stats reads them — but latency histograms are
	// skipped and nothing is served).
	Obs *obs.Registry
	// Tracer, when non-nil, receives an OnStage callback per recorded
	// stage. Stage timing is on when either Obs or Tracer is set.
	Tracer obs.Tracer
	// Body chooses the resident representation for cached response
	// bodies (paper Table 3 applied server-side); nil keeps raw bytes.
	// rep.BodyStoreFor resolves the named implementations.
	Body BodyStore
}

// NewResponseCache wraps a Dispatcher with server-side response
// caching.
func NewResponseCache(inner *Dispatcher, cfg ResponseCacheConfig) *ResponseCache {
	maxEntries := cfg.MaxEntries
	if maxEntries <= 0 {
		maxEntries = 4096
	}
	now := clock.Or(cfg.Clock)
	reg := obs.Or(cfg.Obs)
	body := cfg.Body
	if body == nil {
		body = rawBody{}
	}
	return &ResponseCache{
		inner:      inner,
		ttl:        cfg.TTL,
		maxEntries: maxEntries,
		cacheable:  cfg.Cacheable,
		now:        now,
		body:       body,
		reg:        reg,
		hits:       reg.Counter("server.hits"),
		misses:     reg.Counter("server.misses"),
		tracer:     cfg.Tracer,
		timed:      cfg.Obs != nil || cfg.Tracer != nil,
		table:      make(map[string]*respEntry),
	}
}

// Stats returns (hits, misses), read from the metrics registry.
func (c *ResponseCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// observe records one timed stage; callers gate on c.timed.
func (c *ResponseCache) observe(op string, stage obs.Stage, d time.Duration, err error) {
	c.reg.Stage(stage, "", d, err)
	if c.tracer != nil {
		c.tracer.OnStage(op, stage, "", d, err)
	}
}

// Len returns the number of cached responses.
func (c *ResponseCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.table)
}

// Handle serves a request, from cache when possible. Faults are never
// cached.
func (c *ResponseCache) Handle(request []byte) ([]byte, bool, error) {
	op, err := soap.SniffOperation(request)
	if err != nil || op == "" || (c.cacheable != nil && !c.cacheable(op)) {
		return c.inner.Handle(request)
	}

	key := string(request)
	if body, ok := c.lookup(key, op); ok {
		return body, false, nil
	}

	body, isFault, err := c.inner.Handle(request)
	if err != nil || isFault {
		return body, isFault, err
	}
	c.store(key, op, body)
	return body, false, nil
}

// lookup returns a fresh cached response; op names the operation for
// stage attribution.
func (c *ResponseCache) lookup(key, op string) ([]byte, bool) {
	var start time.Time
	if c.timed {
		start = c.now()
	}
	body, ok := c.lookupEntry(key)
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	if c.timed {
		c.observe(op, obs.StageServerLookup, c.now().Sub(start), nil)
	}
	return body, ok
}

// lookupEntry finds a fresh entry under the lock and materialises its
// body from the resident representation.
func (c *ResponseCache) lookupEntry(key string) ([]byte, bool) {
	c.mu.Lock()
	payload, ok := c.lookupPayloadLocked(key)
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	// Load outside the lock: for non-raw representations this re-renders
	// the body and must not serialize concurrent hits.
	body, err := c.body.Load(payload)
	if err != nil {
		// A payload the store can no longer serve counts as a miss; the
		// entry is replaced on the refill.
		return nil, false
	}
	return body, true
}

// lookupPayload returns a fresh entry's resident payload without
// materializing the body — the streaming hit path's lookup. Counts
// hits/misses and records the lookup stage like lookup.
func (c *ResponseCache) lookupPayload(key, op string) (any, bool) {
	var start time.Time
	if c.timed {
		start = c.now()
	}
	c.mu.Lock()
	payload, ok := c.lookupPayloadLocked(key)
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	if c.timed {
		c.observe(op, obs.StageServerLookup, c.now().Sub(start), nil)
	}
	return payload, ok
}

// lookupPayloadLocked returns the resident payload for a fresh entry.
func (c *ResponseCache) lookupPayloadLocked(key string) (any, bool) {
	e, ok := c.table[key]
	if !ok {
		return nil, false
	}
	if !e.expires.IsZero() && c.now().After(e.expires) {
		c.removeLocked(e)
		return nil, false
	}
	c.moveToFrontLocked(e)
	return e.payload, true
}

// store inserts a response; op names the operation for stage
// attribution.
func (c *ResponseCache) store(key, op string, body []byte) {
	var start time.Time
	if c.timed {
		start = c.now()
	}
	c.storeEntry(key, body)
	if c.timed {
		c.observe(op, obs.StageServerStore, c.now().Sub(start), nil)
	}
}

// storeEntry converts the response body to its resident representation
// and inserts it. Bodies the representation cannot hold (e.g. a
// non-XML payload under compact SAX) are simply not cached.
func (c *ResponseCache) storeEntry(key string, body []byte) {
	var expires time.Time
	if c.ttl > 0 {
		expires = c.now().Add(c.ttl)
	}
	payload, _, err := c.body.Store(body)
	if err != nil {
		return
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.table[key]; ok {
		c.removeLocked(old)
	}
	e := &respEntry{key: key, payload: payload, expires: expires}
	c.table[key] = e
	c.pushFrontLocked(e)
	for len(c.table) > c.maxEntries && c.tail != nil {
		c.removeLocked(c.tail)
	}
}

// ServeHTTP adapts the caching handler to HTTP, mirroring
// Dispatcher.ServeHTTP (including validator behaviour). When the body
// store implements BodyStreamer, hits replay the resident payload
// straight into the response writer — no []byte materialization
// between the cache and the wire.
func (c *ResponseCache) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	streamer, ok := c.body.(BodyStreamer)
	if !ok {
		serveSOAP(w, r, c.inner, c.Handle)
		return
	}
	body, lastMod, ttl, done := soapPreamble(w, r, c.inner)
	if done {
		return
	}
	op, err := soap.SniffOperation(body)
	if err != nil || op == "" || (c.cacheable != nil && !c.cacheable(op)) {
		resp, isFault, herr := c.inner.Handle(body)
		writeSOAPResponse(w, lastMod, ttl, resp, isFault, herr)
		return
	}
	key := string(body)
	if payload, hit := c.lookupPayload(key, op); hit {
		var start time.Time
		if c.timed {
			start = c.now()
		}
		setSOAPHeaders(w, lastMod, ttl)
		n, werr := streamer.WriteBody(payload, w)
		if c.timed {
			c.observe(op, obs.StageServerStream, c.now().Sub(start), werr)
		}
		if werr == nil || n > 0 {
			// Served (or the client went away mid-write — nothing left
			// to do either way).
			return
		}
		// The store could not replay the payload and nothing was
		// written: fall through and refill from the handler.
	}
	resp, isFault, herr := c.inner.Handle(body)
	if herr == nil && !isFault {
		c.store(key, op, resp)
	}
	writeSOAPResponse(w, lastMod, ttl, resp, isFault, herr)
}

// LRU plumbing (same shape as the client cache's, duplicated to keep
// the packages independent).

func (c *ResponseCache) pushFrontLocked(e *respEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *ResponseCache) moveToFrontLocked(e *respEntry) {
	if c.head == e {
		return
	}
	c.unlinkLocked(e)
	c.pushFrontLocked(e)
}

func (c *ResponseCache) removeLocked(e *respEntry) {
	delete(c.table, e.key)
	c.unlinkLocked(e)
	e.payload = nil
}

func (c *ResponseCache) unlinkLocked(e *respEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
