package server

import (
	"net/http"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/soap"
)

// ResponseCache is the server-side counterpart of the client cache: it
// stores fully encoded response envelopes keyed by the raw request
// body, so repeated identical requests skip decoding, the handler, and
// re-encoding. The paper's related-work section surveys this family
// (dynamic Web data caching at the server side); it composes with — and
// is orthogonal to — the client-side cache that is the paper's focus.
//
// Keying on raw request bytes requires byte-identical requests for a
// hit; SOAP clients (including this repository's) serialize
// deterministically, so equivalent calls from the same stack match.
// Clients with different prefix conventions simply miss and are served
// normally.
type ResponseCache struct {
	inner      *Dispatcher
	ttl        time.Duration
	maxEntries int
	cacheable  func(operation string) bool
	now        func() time.Time

	mu    sync.Mutex
	table map[string]*respEntry
	head  *respEntry
	tail  *respEntry

	hits   int64
	misses int64
}

// respEntry is one cached encoded response, a node in the LRU list.
type respEntry struct {
	key        string
	body       []byte
	expires    time.Time
	prev, next *respEntry
}

// ResponseCacheConfig configures NewResponseCache.
type ResponseCacheConfig struct {
	// TTL bounds entry freshness; 0 means entries never expire.
	TTL time.Duration
	// MaxEntries bounds the table; 0 means 4096.
	MaxEntries int
	// Cacheable decides per operation; nil caches every operation.
	Cacheable func(operation string) bool
	// Clock overrides time.Now, for tests.
	Clock func() time.Time
}

// NewResponseCache wraps a Dispatcher with server-side response
// caching.
func NewResponseCache(inner *Dispatcher, cfg ResponseCacheConfig) *ResponseCache {
	maxEntries := cfg.MaxEntries
	if maxEntries <= 0 {
		maxEntries = 4096
	}
	now := clock.Or(cfg.Clock)
	return &ResponseCache{
		inner:      inner,
		ttl:        cfg.TTL,
		maxEntries: maxEntries,
		cacheable:  cfg.Cacheable,
		now:        now,
		table:      make(map[string]*respEntry),
	}
}

// Stats returns (hits, misses).
func (c *ResponseCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached responses.
func (c *ResponseCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.table)
}

// Handle serves a request, from cache when possible. Faults are never
// cached.
func (c *ResponseCache) Handle(request []byte) ([]byte, bool, error) {
	op, err := soap.SniffOperation(request)
	if err != nil || op == "" || (c.cacheable != nil && !c.cacheable(op)) {
		return c.inner.Handle(request)
	}

	key := string(request)
	if body, ok := c.lookup(key); ok {
		return body, false, nil
	}

	body, isFault, err := c.inner.Handle(request)
	if err != nil || isFault {
		return body, isFault, err
	}
	c.store(key, body)
	return body, false, nil
}

// lookup returns a fresh cached response.
func (c *ResponseCache) lookup(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.table[key]
	if !ok {
		c.misses++
		return nil, false
	}
	if !e.expires.IsZero() && c.now().After(e.expires) {
		c.removeLocked(e)
		c.misses++
		return nil, false
	}
	c.moveToFrontLocked(e)
	c.hits++
	return e.body, true
}

// store inserts a response.
func (c *ResponseCache) store(key string, body []byte) {
	var expires time.Time
	if c.ttl > 0 {
		expires = c.now().Add(c.ttl)
	}
	cp := make([]byte, len(body))
	copy(cp, body)

	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.table[key]; ok {
		c.removeLocked(old)
	}
	e := &respEntry{key: key, body: cp, expires: expires}
	c.table[key] = e
	c.pushFrontLocked(e)
	for len(c.table) > c.maxEntries && c.tail != nil {
		c.removeLocked(c.tail)
	}
}

// ServeHTTP adapts the caching handler to HTTP, mirroring
// Dispatcher.ServeHTTP (including validator behaviour).
func (c *ResponseCache) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	serveSOAP(w, r, c.inner, c.Handle)
}

// LRU plumbing (same shape as the client cache's, duplicated to keep
// the packages independent).

func (c *ResponseCache) pushFrontLocked(e *respEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *ResponseCache) moveToFrontLocked(e *respEntry) {
	if c.head == e {
		return
	}
	c.unlinkLocked(e)
	c.pushFrontLocked(e)
}

func (c *ResponseCache) removeLocked(e *respEntry) {
	delete(c.table, e.key)
	c.unlinkLocked(e)
	e.body = nil
}

func (c *ResponseCache) unlinkLocked(e *respEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
