package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/rep"
	"repro/internal/soap"
	"repro/internal/typemap"
)

// newCachedFixture wires a ResponseCache over an echo dispatcher whose
// handler invocations are counted.
func newCachedFixture(t *testing.T, cfg ResponseCacheConfig) (*ResponseCache, *soap.Codec, *atomic.Int64) {
	t.Helper()
	reg := typemap.NewRegistry()
	if err := reg.Register(typemap.QName{Space: ns, Local: "Pair"}, pair{}); err != nil {
		t.Fatal(err)
	}
	codec := soap.NewCodec(reg)
	d := NewDispatcher(codec, ns)
	calls := new(atomic.Int64)
	d.Register("search", func(params []soap.Param) (any, error) {
		calls.Add(1)
		q, _ := params[0].Value.(string)
		return &pair{Key: "result", Value: q}, nil
	})
	d.Register("update", func(params []soap.Param) (any, error) {
		calls.Add(1)
		return "done", nil
	})
	d.Register("boom", func([]soap.Param) (any, error) {
		calls.Add(1)
		return nil, fmt.Errorf("handler failure")
	})
	return NewResponseCache(d, cfg), codec, calls
}

func TestResponseCacheHit(t *testing.T) {
	c, codec, calls := newCachedFixture(t, ResponseCacheConfig{})
	req, _ := codec.EncodeRequest(ns, "search", []soap.Param{{Name: "q", Value: "x"}})

	resp1, fault, err := c.Handle(req)
	if err != nil || fault {
		t.Fatalf("err=%v fault=%v", err, fault)
	}
	resp2, fault, err := c.Handle(req)
	if err != nil || fault {
		t.Fatalf("err=%v fault=%v", err, fault)
	}
	if calls.Load() != 1 {
		t.Errorf("handler calls = %d, want 1", calls.Load())
	}
	if !bytes.Equal(resp1, resp2) {
		t.Error("cached response differs")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d/%d", hits, misses)
	}

	// The cached bytes still decode correctly.
	msg, err := codec.DecodeEnvelope(resp2)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Result().(*pair).Value != "x" {
		t.Errorf("result = %+v", msg.Result())
	}
}

func TestResponseCacheDistinctRequestsMiss(t *testing.T) {
	c, codec, calls := newCachedFixture(t, ResponseCacheConfig{})
	for _, q := range []string{"a", "b", "a"} {
		req, _ := codec.EncodeRequest(ns, "search", []soap.Param{{Name: "q", Value: q}})
		if _, _, err := c.Handle(req); err != nil {
			t.Fatal(err)
		}
	}
	if calls.Load() != 2 {
		t.Errorf("handler calls = %d, want 2", calls.Load())
	}
}

func TestResponseCachePolicyFilter(t *testing.T) {
	c, codec, calls := newCachedFixture(t, ResponseCacheConfig{
		Cacheable: func(op string) bool { return op == "search" },
	})
	req, _ := codec.EncodeRequest(ns, "update", []soap.Param{{Name: "v", Value: "x"}})
	for i := 0; i < 3; i++ {
		if _, _, err := c.Handle(req); err != nil {
			t.Fatal(err)
		}
	}
	if calls.Load() != 3 {
		t.Errorf("uncacheable op served from cache: calls = %d", calls.Load())
	}
	if c.Len() != 0 {
		t.Errorf("entries = %d", c.Len())
	}
}

func TestResponseCacheFaultNotCached(t *testing.T) {
	c, codec, calls := newCachedFixture(t, ResponseCacheConfig{})
	req, _ := codec.EncodeRequest(ns, "boom", nil)
	for i := 0; i < 2; i++ {
		_, fault, err := c.Handle(req)
		if err != nil || !fault {
			t.Fatalf("err=%v fault=%v", err, fault)
		}
	}
	if calls.Load() != 2 {
		t.Errorf("fault cached: calls = %d", calls.Load())
	}
}

func TestResponseCacheTTL(t *testing.T) {
	now := time.Unix(1000, 0)
	c, codec, calls := newCachedFixture(t, ResponseCacheConfig{
		TTL:   time.Minute,
		Clock: func() time.Time { return now },
	})
	req, _ := codec.EncodeRequest(ns, "search", []soap.Param{{Name: "q", Value: "x"}})
	if _, _, err := c.Handle(req); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Minute)
	if _, _, err := c.Handle(req); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Errorf("expired entry served: calls = %d", calls.Load())
	}
}

func TestResponseCacheLRUBound(t *testing.T) {
	c, codec, _ := newCachedFixture(t, ResponseCacheConfig{MaxEntries: 2})
	for i := 0; i < 5; i++ {
		req, _ := codec.EncodeRequest(ns, "search", []soap.Param{{Name: "q", Value: fmt.Sprintf("q%d", i)}})
		if _, _, err := c.Handle(req); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Errorf("entries = %d, want 2", c.Len())
	}
}

func TestResponseCacheMalformedRequestPassesThrough(t *testing.T) {
	c, _, _ := newCachedFixture(t, ResponseCacheConfig{})
	resp, fault, err := c.Handle([]byte("garbage"))
	if err != nil || !fault {
		t.Fatalf("err=%v fault=%v", err, fault)
	}
	if len(resp) == 0 {
		t.Error("no fault envelope")
	}
	if c.Len() != 0 {
		t.Error("garbage cached")
	}
}

func TestResponseCacheConcurrent(t *testing.T) {
	c, codec, _ := newCachedFixture(t, ResponseCacheConfig{MaxEntries: 8})
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func(g int) {
			var err error
			defer func() { done <- err }()
			for i := 0; i < 100; i++ {
				req, _ := codec.EncodeRequest(ns, "search",
					[]soap.Param{{Name: "q", Value: fmt.Sprintf("q%d", (g+i)%12)}})
				if _, _, e := c.Handle(req); e != nil {
					err = e
					return
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestSniffOperation(t *testing.T) {
	_, codec, _ := newCachedFixture(t, ResponseCacheConfig{})
	req, _ := codec.EncodeRequest(ns, "search", []soap.Param{{Name: "q", Value: "x"}})
	op, err := soap.SniffOperation(req)
	if err != nil || op != "search" {
		t.Errorf("op = %q, err = %v", op, err)
	}

	fault, _ := codec.EncodeFault(&soap.Fault{Code: "c", String: "s"})
	op, err = soap.SniffOperation(fault)
	if err != nil || op != "" {
		t.Errorf("fault sniff = %q, %v", op, err)
	}

	empty := `<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/"><e:Body></e:Body></e:Envelope>`
	op, err = soap.SniffOperation([]byte(empty))
	if err != nil || op != "" {
		t.Errorf("empty body sniff = %q, %v", op, err)
	}

	selfClosed := `<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/"><e:Body/></e:Envelope>`
	op, err = soap.SniffOperation([]byte(selfClosed))
	if err != nil || op != "" {
		t.Errorf("self-closed body sniff = %q, %v", op, err)
	}

	withHeader := `<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/">` +
		`<e:Header><tx xmlns="urn:h">1</tx></e:Header>` +
		`<e:Body><op xmlns="urn:x"><a>1</a></op></e:Body></e:Envelope>`
	op, err = soap.SniffOperation([]byte(withHeader))
	if err != nil || op != "op" {
		t.Errorf("header sniff = %q, %v", op, err)
	}

	if _, err := soap.SniffOperation([]byte(`<notsoap/>`)); err == nil {
		t.Error("non-envelope accepted")
	}
	if op, err := soap.SniffOperation([]byte(`not xml`)); err == nil && op != "" {
		t.Error("garbage accepted")
	}
}

// failingBody declines every store, so nothing is ever cached.
type failingBody struct{}

func (failingBody) Name() string                        { return "failing" }
func (failingBody) Store(body []byte) (any, int, error) { return nil, 0, fmt.Errorf("nope") }
func (failingBody) Load(payload any) ([]byte, error)    { return nil, fmt.Errorf("nope") }

func TestResponseCacheCompactBody(t *testing.T) {
	// With the compact-SAX resident representation, a hit re-renders the
	// envelope from the event sequence: the served bytes must still be a
	// decodable response carrying the same result.
	c, codec, calls := newCachedFixture(t, ResponseCacheConfig{Body: rep.NewCompactBodyStore()})
	req, _ := codec.EncodeRequest(ns, "search", []soap.Param{{Name: "q", Value: "compact"}})

	if _, _, err := c.Handle(req); err != nil {
		t.Fatal(err)
	}
	resp, fault, err := c.Handle(req)
	if err != nil || fault {
		t.Fatalf("err=%v fault=%v", err, fault)
	}
	if calls.Load() != 1 {
		t.Errorf("handler calls = %d, want 1 (second request should hit)", calls.Load())
	}
	msg, err := codec.DecodeEnvelope(resp)
	if err != nil {
		t.Fatalf("re-rendered hit does not decode: %v", err)
	}
	if msg.Result().(*pair).Value != "compact" {
		t.Errorf("result = %+v", msg.Result())
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = %d/%d", hits, misses)
	}
}

func TestResponseCacheBodyStoreFailureSkipsCaching(t *testing.T) {
	// A body the representation cannot hold is served but not cached;
	// every request reaches the handler.
	c, codec, calls := newCachedFixture(t, ResponseCacheConfig{Body: failingBody{}})
	req, _ := codec.EncodeRequest(ns, "search", []soap.Param{{Name: "q", Value: "x"}})
	for i := 0; i < 2; i++ {
		if _, _, err := c.Handle(req); err != nil {
			t.Fatal(err)
		}
	}
	if calls.Load() != 2 {
		t.Errorf("handler calls = %d, want 2 (nothing cacheable)", calls.Load())
	}
	if c.Len() != 0 {
		t.Errorf("cache holds %d entries, want 0", c.Len())
	}
}

// postSOAP posts one SOAP request to the cache's HTTP surface.
func postSOAP(t *testing.T, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "text/xml", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// TestResponseCacheStreamingHTTPHit: the default raw body store
// implements BodyStreamer, so an HTTP hit replays the cached bytes
// straight into the response writer. The streamed hit must be
// byte-identical to the miss response and attributed to the
// server-stream stage.
func TestResponseCacheStreamingHTTPHit(t *testing.T) {
	obsReg := obs.NewRegistry()
	c, codec, calls := newCachedFixture(t, ResponseCacheConfig{Obs: obsReg})
	srv := httptest.NewServer(c)
	defer srv.Close()

	req, _ := codec.EncodeRequest(ns, "search", []soap.Param{{Name: "q", Value: "streamed"}})
	s1, b1 := postSOAP(t, srv.URL, req)
	s2, b2 := postSOAP(t, srv.URL, req)
	if s1 != http.StatusOK || s2 != http.StatusOK {
		t.Fatalf("status = %d, %d", s1, s2)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("streamed hit diverges from the miss response")
	}
	if calls.Load() != 1 {
		t.Errorf("handler calls = %d, want 1", calls.Load())
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = %d/%d", hits, misses)
	}
	h := obsReg.StageHistogram(obs.StageServerStream, "")
	if h == nil || h.Snapshot().Count != 1 {
		t.Error("hit not attributed to the server-stream stage")
	}
	msg, err := codec.DecodeEnvelope(b2)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Result().(*pair).Value != "streamed" {
		t.Errorf("result = %+v", msg.Result())
	}
}

// TestResponseCacheTemplateBodyHTTP: with the xmltmpl resident
// representation, entries of the same response shape share one spliced
// skeleton and HTTP hits stream the spliced document.
func TestResponseCacheTemplateBodyHTTP(t *testing.T) {
	ts := rep.NewTemplateBodyStore()
	c, codec, calls := newCachedFixture(t, ResponseCacheConfig{Body: ts})
	srv := httptest.NewServer(c)
	defer srv.Close()

	for _, q := range []string{"first", "second"} {
		req, _ := codec.EncodeRequest(ns, "search", []soap.Param{{Name: "q", Value: q}})
		_, miss := postSOAP(t, srv.URL, req)
		_, hit := postSOAP(t, srv.URL, req)
		if !bytes.Equal(miss, hit) {
			t.Errorf("q=%s: spliced hit diverges from the miss response", q)
		}
		msg, err := codec.DecodeEnvelope(hit)
		if err != nil {
			t.Fatalf("q=%s: spliced hit does not decode: %v", q, err)
		}
		if msg.Result().(*pair).Value != q {
			t.Errorf("q=%s: result = %+v", q, msg.Result())
		}
	}
	if calls.Load() != 2 {
		t.Errorf("handler calls = %d, want 2", calls.Load())
	}
	if s := ts.Stats(); s.Skeletons != 1 {
		t.Errorf("skeletons = %d, want 1 shared across both entries", s.Skeletons)
	}
}

// brokenStreamer stores and loads like the raw body but cannot replay:
// WriteBody fails before writing anything.
type brokenStreamer struct{ rawBody }

func (brokenStreamer) WriteBody(any, io.Writer) (int64, error) {
	return 0, fmt.Errorf("replay failed")
}

// TestResponseCacheStreamFailureRefills: a payload the streamer cannot
// replay (zero bytes written) must fall through to the handler, so the
// client still gets a response.
func TestResponseCacheStreamFailureRefills(t *testing.T) {
	c, codec, calls := newCachedFixture(t, ResponseCacheConfig{Body: brokenStreamer{}})
	srv := httptest.NewServer(c)
	defer srv.Close()

	req, _ := codec.EncodeRequest(ns, "search", []soap.Param{{Name: "q", Value: "x"}})
	postSOAP(t, srv.URL, req)
	status, body := postSOAP(t, srv.URL, req)
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if calls.Load() != 2 {
		t.Errorf("handler calls = %d, want 2 (refill after failed replay)", calls.Load())
	}
	msg, err := codec.DecodeEnvelope(body)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Result().(*pair).Value != "x" {
		t.Errorf("result = %+v", msg.Result())
	}
}
