// Package server is a SOAP 1.1 rpc/encoded service dispatcher: it
// parses request envelopes, routes to registered operation handlers,
// and serializes responses or faults. The dummy Google Web services and
// the portal scenario's back ends run on it.
package server

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/soap"
	"repro/internal/transport"
)

// OpHandler implements one operation: it receives the decoded request
// parameters and returns the response application object.
type OpHandler func(params []soap.Param) (any, error)

// Dispatcher routes SOAP requests to operation handlers.
type Dispatcher struct {
	codec    *soap.Codec
	targetNS string

	mu  sync.RWMutex
	ops map[string]OpHandler

	// LastModified, when set, stamps HTTP responses with a
	// Last-Modified header and honors If-Modified-Since (the HTTP 1.1
	// consistency mechanism from paper Section 3.2).
	lastModified time.Time
	ttl          time.Duration
}

// NewDispatcher returns a Dispatcher serving operations in targetNS.
func NewDispatcher(codec *soap.Codec, targetNS string) *Dispatcher {
	return &Dispatcher{
		codec:    codec,
		targetNS: targetNS,
		ops:      make(map[string]OpHandler),
	}
}

// Register binds an operation name to its handler.
func (d *Dispatcher) Register(operation string, h OpHandler) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ops[operation] = h
}

// SetValidatorPolicy enables HTTP cache validators on responses: a
// Last-Modified timestamp and a Cache-Control max-age of ttl.
func (d *Dispatcher) SetValidatorPolicy(lastModified time.Time, ttl time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.lastModified = lastModified
	d.ttl = ttl
}

// Handle processes one request envelope and returns the response
// envelope. Handler errors become fault envelopes, not Go errors; the
// error return is reserved for encoding failures.
func (d *Dispatcher) Handle(request []byte) ([]byte, bool, error) {
	op, result, fault := d.dispatch(request)
	if fault != nil {
		body, err := d.codec.EncodeFault(fault)
		if err != nil {
			return nil, true, fmt.Errorf("server: encode fault: %w", err)
		}
		return body, true, nil
	}
	resp, err := d.codec.EncodeResponse(d.targetNS, op, result)
	if err != nil {
		return nil, false, fmt.Errorf("server: encode response for %s: %w", op, err)
	}
	return resp, false, nil
}

// dispatch decodes the request envelope and runs the operation
// handler, returning the operation and its result application object,
// or the fault to serialize. Factored from Handle so the HTTP path can
// stream the encoded response without a []byte round trip.
func (d *Dispatcher) dispatch(request []byte) (op string, result any, fault *soap.Fault) {
	msg, err := d.codec.DecodeEnvelope(request)
	if err != nil {
		return "", nil, &soap.Fault{Code: "soapenv:Client", String: fmt.Sprintf("malformed request: %v", err)}
	}
	if msg.Wrapper.Local == "" {
		return "", nil, &soap.Fault{Code: "soapenv:Client", String: "request has no operation element"}
	}
	op = msg.Wrapper.Local
	d.mu.RLock()
	h, ok := d.ops[op]
	d.mu.RUnlock()
	if !ok {
		return op, nil, &soap.Fault{Code: "soapenv:Client", String: fmt.Sprintf("unknown operation %q", op)}
	}
	result, err = h(msg.Params)
	if err != nil {
		return op, nil, &soap.Fault{Code: "soapenv:Server", String: err.Error()}
	}
	return op, result, nil
}

// ServeHTTP implements http.Handler: POST text/xml in, envelope out.
// Faults are returned with HTTP 500 per SOAP 1.1 over HTTP. Successful
// responses are encoded straight into the response writer
// (soap.Codec.EncodeResponseTo): the envelope is built fully before the
// first byte goes out, so encode errors still produce a 500.
func (d *Dispatcher) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	body, lastMod, ttl, done := soapPreamble(w, r, d)
	if done {
		return
	}
	op, result, fault := d.dispatch(body)
	if fault != nil {
		resp, err := d.codec.EncodeFault(fault)
		if err != nil {
			err = fmt.Errorf("server: encode fault: %w", err)
		}
		writeSOAPResponse(w, lastMod, ttl, resp, true, err)
		return
	}
	setSOAPHeaders(w, lastMod, ttl)
	if n, err := d.codec.EncodeResponseTo(w, d.targetNS, op, result); err != nil && n == 0 {
		// Build failed before any byte was written; the writer is still
		// fresh enough for an error status. (A write error with n > 0
		// means the client is gone — nothing to do.)
		http.Error(w, fmt.Sprintf("server: encode response for %s: %v", op, err), http.StatusInternalServerError)
	}
}

// serveSOAP adapts a Handle-shaped function to HTTP with the
// dispatcher's validator policy; shared by Dispatcher and
// ResponseCache.
func serveSOAP(w http.ResponseWriter, r *http.Request, d *Dispatcher, handle func([]byte) ([]byte, bool, error)) {
	body, lastMod, ttl, done := soapPreamble(w, r, d)
	if done {
		return
	}
	resp, isFault, err := handle(body)
	writeSOAPResponse(w, lastMod, ttl, resp, isFault, err)
}

// soapPreamble performs the HTTP boilerplate shared by every SOAP
// endpoint: the POST-only check, the If-Modified-Since validator
// answer, and the body read. done reports that the response is already
// written; otherwise the caller serves body and stamps the returned
// validator policy on its response.
func soapPreamble(w http.ResponseWriter, r *http.Request, d *Dispatcher) (body []byte, lastMod time.Time, ttl time.Duration, done bool) {
	if r.Method != http.MethodPost {
		http.Error(w, "SOAP endpoint: POST only", http.StatusMethodNotAllowed)
		return nil, lastMod, 0, true
	}
	d.mu.RLock()
	lastMod, ttl = d.lastModified, d.ttl
	d.mu.RUnlock()
	if !lastMod.IsZero() && transport.NotModified(r, lastMod) {
		// Per RFC 9111 a 304 carries the validators so the client can
		// refresh its entry's lifetime.
		transport.SetValidators(w.Header(), lastMod, ttl)
		w.WriteHeader(http.StatusNotModified)
		return nil, lastMod, ttl, true
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, "read body", http.StatusBadRequest)
		return nil, lastMod, ttl, true
	}
	return body, lastMod, ttl, false
}

// setSOAPHeaders stamps the SOAP content type and the validator policy
// on a response about to be written.
func setSOAPHeaders(w http.ResponseWriter, lastMod time.Time, ttl time.Duration) {
	w.Header().Set("Content-Type", `text/xml; charset=utf-8`)
	if !lastMod.IsZero() || ttl > 0 {
		transport.SetValidators(w.Header(), lastMod, ttl)
	}
}

// writeSOAPResponse writes a handled envelope (or error) with the SOAP
// status conventions.
func writeSOAPResponse(w http.ResponseWriter, lastMod time.Time, ttl time.Duration, resp []byte, isFault bool, err error) {
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	setSOAPHeaders(w, lastMod, ttl)
	if isFault {
		w.WriteHeader(http.StatusInternalServerError)
	}
	_, _ = w.Write(resp)
}
