// Package server is a SOAP 1.1 rpc/encoded service dispatcher: it
// parses request envelopes, routes to registered operation handlers,
// and serializes responses or faults. The dummy Google Web services and
// the portal scenario's back ends run on it.
package server

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/soap"
	"repro/internal/transport"
)

// OpHandler implements one operation: it receives the decoded request
// parameters and returns the response application object.
type OpHandler func(params []soap.Param) (any, error)

// Dispatcher routes SOAP requests to operation handlers.
type Dispatcher struct {
	codec    *soap.Codec
	targetNS string

	mu  sync.RWMutex
	ops map[string]OpHandler

	// LastModified, when set, stamps HTTP responses with a
	// Last-Modified header and honors If-Modified-Since (the HTTP 1.1
	// consistency mechanism from paper Section 3.2).
	lastModified time.Time
	ttl          time.Duration
}

// NewDispatcher returns a Dispatcher serving operations in targetNS.
func NewDispatcher(codec *soap.Codec, targetNS string) *Dispatcher {
	return &Dispatcher{
		codec:    codec,
		targetNS: targetNS,
		ops:      make(map[string]OpHandler),
	}
}

// Register binds an operation name to its handler.
func (d *Dispatcher) Register(operation string, h OpHandler) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ops[operation] = h
}

// SetValidatorPolicy enables HTTP cache validators on responses: a
// Last-Modified timestamp and a Cache-Control max-age of ttl.
func (d *Dispatcher) SetValidatorPolicy(lastModified time.Time, ttl time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.lastModified = lastModified
	d.ttl = ttl
}

// Handle processes one request envelope and returns the response
// envelope. Handler errors become fault envelopes, not Go errors; the
// error return is reserved for encoding failures.
func (d *Dispatcher) Handle(request []byte) ([]byte, bool, error) {
	msg, err := d.codec.DecodeEnvelope(request)
	if err != nil {
		return d.fault("soapenv:Client", fmt.Sprintf("malformed request: %v", err))
	}
	if msg.Wrapper.Local == "" {
		return d.fault("soapenv:Client", "request has no operation element")
	}
	op := msg.Wrapper.Local
	d.mu.RLock()
	h, ok := d.ops[op]
	d.mu.RUnlock()
	if !ok {
		return d.fault("soapenv:Client", fmt.Sprintf("unknown operation %q", op))
	}
	result, err := h(msg.Params)
	if err != nil {
		return d.fault("soapenv:Server", err.Error())
	}
	resp, err := d.codec.EncodeResponse(d.targetNS, op, result)
	if err != nil {
		return nil, false, fmt.Errorf("server: encode response for %s: %w", op, err)
	}
	return resp, false, nil
}

// fault builds a fault envelope; the bool reports "this is a fault".
func (d *Dispatcher) fault(code, msg string) ([]byte, bool, error) {
	body, err := d.codec.EncodeFault(&soap.Fault{Code: code, String: msg})
	if err != nil {
		return nil, true, fmt.Errorf("server: encode fault: %w", err)
	}
	return body, true, nil
}

// ServeHTTP implements http.Handler: POST text/xml in, envelope out.
// Faults are returned with HTTP 500 per SOAP 1.1 over HTTP.
func (d *Dispatcher) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	serveSOAP(w, r, d, d.Handle)
}

// serveSOAP adapts a Handle-shaped function to HTTP with the
// dispatcher's validator policy; shared by Dispatcher and
// ResponseCache.
func serveSOAP(w http.ResponseWriter, r *http.Request, d *Dispatcher, handle func([]byte) ([]byte, bool, error)) {
	if r.Method != http.MethodPost {
		http.Error(w, "SOAP endpoint: POST only", http.StatusMethodNotAllowed)
		return
	}
	d.mu.RLock()
	lastMod, ttl := d.lastModified, d.ttl
	d.mu.RUnlock()
	if !lastMod.IsZero() && transport.NotModified(r, lastMod) {
		// Per RFC 9111 a 304 carries the validators so the client can
		// refresh its entry's lifetime.
		transport.SetValidators(w.Header(), lastMod, ttl)
		w.WriteHeader(http.StatusNotModified)
		return
	}

	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, "read body", http.StatusBadRequest)
		return
	}
	resp, isFault, err := handle(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", `text/xml; charset=utf-8`)
	if !lastMod.IsZero() || ttl > 0 {
		transport.SetValidators(w.Header(), lastMod, ttl)
	}
	if isFault {
		w.WriteHeader(http.StatusInternalServerError)
	}
	_, _ = w.Write(resp)
}
