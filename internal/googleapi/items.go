package googleapi

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/invalidate"
	"repro/internal/server"
	"repro/internal/soap"
)

// This file adds a small mutable keyspace to the dummy Google service:
// a key/value item store with read operations (doGetItem, doListItems)
// and one write-through operation (doPutItem). The paper's three
// operations are all read-only, which is why its cache can live on TTLs
// alone; the item operations exist to exercise dependency-aware
// invalidation (package invalidate), where a write must be visible
// through the cache immediately rather than after a TTL expiry.

// Item operation names, following the WSDL's do* convention.
const (
	OpGetItem   = "doGetItem"
	OpPutItem   = "doPutItem"
	OpListItems = "doListItems"
)

// ItemKeyspacePrefix prefixes the per-item keyspaces in ItemGraph;
// KeyspaceAllItems covers the listing.
const (
	ItemKeyspacePrefix = "item:"
	KeyspaceAllItems   = invalidate.Keyspace("items")
)

// ItemStore is the backend state behind the item operations: a
// mutex-guarded map. All item operations return plain strings, so the
// store needs no typemap registration.
type ItemStore struct {
	mu    sync.Mutex
	items map[string]string
}

// NewItemStore returns an empty store.
func NewItemStore() *ItemStore {
	return &ItemStore{items: make(map[string]string)}
}

// Get returns the stored value for key, or "" when absent.
func (s *ItemStore) Get(key string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.items[key]
}

// Put stores value under key.
func (s *ItemStore) Put(key, value string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items[key] = value
}

// List returns the stored keys, sorted, joined by commas.
func (s *ItemStore) List() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.items))
	for k := range s.items {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ",")
}

// Register installs the item operations on d, backed by s. Registering
// a second store for the same dispatcher replaces the first — tests use
// this to substitute a store they can inspect.
func (s *ItemStore) Register(d *server.Dispatcher) {
	d.Register(OpGetItem, func(params []soap.Param) (any, error) {
		key, err := stringParam(params, "key", 1)
		if err != nil {
			return nil, err
		}
		return s.Get(key), nil
	})
	d.Register(OpPutItem, func(params []soap.Param) (any, error) {
		key, err := stringParam(params, "key", 1)
		if err != nil {
			return nil, err
		}
		value, err := stringParam(params, "value", 2)
		if err != nil {
			return nil, err
		}
		s.Put(key, value)
		return "stored:" + key, nil
	})
	d.Register(OpListItems, func(params []soap.Param) (any, error) {
		return s.List(), nil
	})
}

// ItemGraph declares the item operations' dependency sets for the
// invalidation graph: doGetItem reads the single item's keyspace,
// doListItems reads the listing keyspace, and doPutItem writes both —
// a put must invalidate the cached value of that item and any cached
// listing that may or may not include it.
func ItemGraph() *invalidate.Graph {
	itemOf := func(params []soap.Param) []invalidate.Keyspace {
		key, err := stringParam(params, "key", 1)
		if err != nil {
			return nil
		}
		return []invalidate.Keyspace{invalidate.Keyspace(ItemKeyspacePrefix + key)}
	}
	return invalidate.NewGraph().
		Read(OpGetItem, itemOf).
		Read(OpListItems, invalidate.Fixed(KeyspaceAllItems)).
		Write(OpPutItem, func(params []soap.Param) []invalidate.Keyspace {
			return append(itemOf(params), KeyspaceAllItems)
		})
}

// GetItemParams builds the doGetItem parameter list.
func GetItemParams(key string) []soap.Param {
	return []soap.Param{{Name: "key", Value: key}}
}

// PutItemParams builds the doPutItem parameter list.
func PutItemParams(key, value string) []soap.Param {
	return []soap.Param{
		{Name: "key", Value: key},
		{Name: "value", Value: value},
	}
}
