package googleapi

import (
	"context"
	"testing"

	"repro/internal/client"
	"repro/internal/invalidate"
	"repro/internal/soap"
	"repro/internal/transport"
)

func TestItemOperationsEndToEnd(t *testing.T) {
	d, codec, err := NewDispatcher()
	if err != nil {
		t.Fatal(err)
	}
	store := NewItemStore()
	store.Register(d) // replace the private default store with an inspectable one
	tr := &transport.InProcess{Handler: d}

	invoke := func(op string, params []soap.Param) string {
		t.Helper()
		call := client.NewCall(codec, tr, Endpoint, Namespace, op, "urn:GoogleSearchAction", client.Options{})
		res, err := call.Invoke(context.Background(), params...)
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		s, ok := res.(string)
		if !ok {
			t.Fatalf("%s result = %T, want string", op, res)
		}
		return s
	}

	if got := invoke(OpGetItem, GetItemParams("a")); got != "" {
		t.Errorf("get of absent item = %q, want empty", got)
	}
	if got := invoke(OpPutItem, PutItemParams("a", "v1")); got != "stored:a" {
		t.Errorf("put = %q, want stored:a", got)
	}
	invoke(OpPutItem, PutItemParams("b", "v2"))
	if got := invoke(OpGetItem, GetItemParams("a")); got != "v1" {
		t.Errorf("get = %q, want v1", got)
	}
	if got := invoke(OpListItems, nil); got != "a,b" {
		t.Errorf("list = %q, want a,b", got)
	}
	if got := store.Get("b"); got != "v2" {
		t.Errorf("store.Get(b) = %q, want v2", got)
	}
}

func TestItemGraphDeclarations(t *testing.T) {
	g := ItemGraph()
	inv := invalidate.New(g, nil)

	if !inv.WritesDeclared(OpPutItem) {
		t.Error("doPutItem has no declared write set")
	}
	if inv.WritesDeclared(OpGetItem) || inv.WritesDeclared(OpListItems) {
		t.Error("read operations declare write sets")
	}

	// A put to item a must invalidate doGetItem(a) and doListItems, but
	// leave doGetItem(b) standing.
	getA := inv.ReadStamps(OpGetItem, GetItemParams("a"))
	getB := inv.ReadStamps(OpGetItem, GetItemParams("b"))
	list := inv.ReadStamps(OpListItems, nil)
	if len(getA) == 0 || len(list) == 0 {
		t.Fatal("read operations produced no stamps")
	}
	inv.CommitWrite(OpPutItem, PutItemParams("a", "v9"))
	if !invalidate.Stale(getA) {
		t.Error("doGetItem(a) stamps survived a put to a")
	}
	if !invalidate.Stale(list) {
		t.Error("doListItems stamps survived a put")
	}
	if invalidate.Stale(getB) {
		t.Error("doGetItem(b) stamps invalidated by a put to a")
	}
}
