package googleapi

import (
	"fmt"
	"strings"
)

// The generators below produce deterministic synthetic responses: the
// same request always yields byte-identical results (the paper's dummy
// services "actually return the same response XML messages every
// time"), while distinct requests yield distinct results so cache-miss
// traffic is realistic. Sizes are calibrated so the on-wire XML is
// close to the paper's Table 9 (≈520 B spelling, ≈5.3 KB cached page,
// ≈5.0 KB search result).

// rng is a small deterministic generator seeded from a string.
type rng struct{ state uint64 }

func newRNG(seed string) *rng {
	// FNV-1a over the seed.
	h := uint64(14695981039346656037)
	for i := 0; i < len(seed); i++ {
		h ^= uint64(seed[i])
		h *= 1099511628211
	}
	if h == 0 {
		h = 1
	}
	return &rng{state: h}
}

func (r *rng) next() uint64 {
	// xorshift64*.
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 2685821657736338717
}

func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

func (r *rng) pick(words []string) string {
	return words[r.intn(len(words))]
}

var _vocab = []string{
	"distributed", "caching", "middleware", "services", "response",
	"representation", "protocol", "interoperability", "throughput",
	"latency", "serialization", "deserialization", "envelope",
	"transparent", "optimal", "heterogeneous", "platform", "client",
	"reduction", "overhead", "processing", "performance", "evaluation",
}

// SpellingSuggestion returns the suggestion for a phrase: a short
// string, the "small and simple" return class.
func SpellingSuggestion(phrase string) string {
	r := newRNG("spell:" + phrase)
	words := strings.Fields(phrase)
	if len(words) == 0 {
		words = []string{"web"}
	}
	out := make([]string, len(words))
	for i, w := range words {
		if r.intn(2) == 0 {
			out[i] = w
		} else {
			out[i] = _vocab[r.intn(len(_vocab))]
		}
	}
	return strings.Join(out, " ")
}

// CachedPageSize is the size of generated cached pages, chosen so the
// base64-encoded response XML lands near the paper's 5,338 bytes
// (Table 9): ~3.6 KB of page bytes × 4/3 base64 expansion + envelope.
const CachedPageSize = 3600

// CachedPage returns the cached page bytes for a URL: a single large
// byte array, the "large and simple" return class.
func CachedPage(url string) []byte {
	r := newRNG("page:" + url)
	var b strings.Builder
	b.Grow(CachedPageSize + 256)
	b.WriteString("<html><head><title>")
	b.WriteString(url)
	b.WriteString("</title></head><body>")
	for b.Len() < CachedPageSize-16 {
		b.WriteString("<p>")
		for i := 0; i < 8; i++ {
			b.WriteString(r.pick(_vocab))
			b.WriteByte(' ')
		}
		b.WriteString("</p>")
	}
	b.WriteString("</body></html>")
	page := b.String()
	if len(page) > CachedPageSize {
		page = page[:CachedPageSize]
	}
	return []byte(page)
}

// SearchResultCount is the number of ResultElement entries generated
// per search, sized so the response XML lands near the paper's 5,024
// bytes (Table 9).
const SearchResultCount = 3

// Search returns the result object for a query: a deeply structured
// object tree, the "large and complex" return class.
func Search(query string, start, maxResults int) *GoogleSearchResult {
	r := newRNG("search:" + query)
	n := SearchResultCount
	if maxResults > 0 && maxResults < n {
		n = maxResults
	}
	elems := make([]ResultElement, n)
	for i := range elems {
		host := fmt.Sprintf("www.%s-%s.example.com", r.pick(_vocab), r.pick(_vocab))
		elems[i] = ResultElement{
			Summary:                   sentence(r, 9),
			URL:                       fmt.Sprintf("http://%s/%s/%d.html", host, r.pick(_vocab), r.intn(1000)),
			Snippet:                   sentence(r, 14) + " <b>" + query + "</b> " + sentence(r, 9),
			Title:                     titleCase(sentence(r, 4)),
			CachedSize:                fmt.Sprintf("%dk", 4+r.intn(90)),
			RelatedInformationPresent: r.intn(2) == 1,
			HostName:                  host,
			DirectoryCategory: DirectoryCategory{
				FullViewableName: "Top/Computers/" + titleCase(r.pick(_vocab)),
				SpecialEncoding:  "",
			},
			DirectoryTitle: titleCase(r.pick(_vocab)),
			Language:       "en",
		}
	}
	cats := []DirectoryCategory{
		{FullViewableName: "Top/Computers/Software", SpecialEncoding: ""},
	}
	return &GoogleSearchResult{
		DocumentFiltering:          false,
		SearchComments:             "",
		EstimatedTotalResultsCount: 1000 + r.intn(4_000_000),
		EstimateIsExact:            false,
		ResultElements:             elems,
		SearchQuery:                query,
		StartIndex:                 start + 1,
		EndIndex:                   start + n,
		SearchTips:                 "",
		DirectoryCategories:        cats,
		SearchTime:                 float64(50+r.intn(400)) / 1000.0,
	}
}

// sentence generates n space-separated vocabulary words.
func sentence(r *rng, n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(r.pick(_vocab))
	}
	return b.String()
}

// titleCase upper-cases the first letter of each ASCII word.
func titleCase(s string) string {
	b := []byte(s)
	up := true
	for i, c := range b {
		if c == ' ' {
			up = true
			continue
		}
		if up && c >= 'a' && c <= 'z' {
			b[i] = c - ('a' - 'A')
		}
		up = false
	}
	return string(b)
}
