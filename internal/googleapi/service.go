package googleapi

import (
	"fmt"
	"net/http"
	"strings"
	"sync"

	"repro/internal/server"
	"repro/internal/soap"
	"repro/internal/typemap"
)

// NewDispatcher builds the dummy Google Web services dispatcher: a full
// SOAP server implementing the three operations with the synthetic data
// generators. It decodes every request and encodes every response, so
// back-end cost is realistic but bounded.
func NewDispatcher() (*server.Dispatcher, *soap.Codec, error) {
	reg := typemap.NewRegistry()
	if err := RegisterTypes(reg); err != nil {
		return nil, nil, err
	}
	codec := soap.NewCodec(reg)
	d := server.NewDispatcher(codec, Namespace)

	d.Register(OpSpellingSuggestion, func(params []soap.Param) (any, error) {
		phrase, err := stringParam(params, "phrase", 1)
		if err != nil {
			return nil, err
		}
		return SpellingSuggestion(phrase), nil
	})
	d.Register(OpGetCachedPage, func(params []soap.Param) (any, error) {
		url, err := stringParam(params, "url", 1)
		if err != nil {
			return nil, err
		}
		return CachedPage(url), nil
	})
	d.Register(OpGoogleSearch, func(params []soap.Param) (any, error) {
		q, err := stringParam(params, "q", 1)
		if err != nil {
			return nil, err
		}
		start, _ := intParam(params, "start", 2)
		maxResults, _ := intParam(params, "maxResults", 3)
		return Search(q, start, maxResults), nil
	})
	// The mutable item operations ride along with a private store so
	// every dispatcher can serve write-through traffic out of the box;
	// tests that need to inspect the backend state register their own
	// store over this one.
	NewItemStore().Register(d)
	return d, codec, nil
}

// stringParam finds a parameter by name, falling back to position.
func stringParam(params []soap.Param, name string, pos int) (string, error) {
	for _, p := range params {
		if p.Name == name {
			s, ok := p.Value.(string)
			if !ok {
				return "", fmt.Errorf("parameter %s is %T, not string", name, p.Value)
			}
			return s, nil
		}
	}
	if pos < len(params) {
		if s, ok := params[pos].Value.(string); ok {
			return s, nil
		}
	}
	return "", fmt.Errorf("missing parameter %s", name)
}

// intParam finds an int parameter by name or position.
func intParam(params []soap.Param, name string, pos int) (int, error) {
	for _, p := range params {
		if p.Name == name {
			if n, ok := p.Value.(int); ok {
				return n, nil
			}
		}
	}
	if pos < len(params) {
		if n, ok := params[pos].Value.(int); ok {
			return n, nil
		}
	}
	return 0, fmt.Errorf("missing parameter %s", name)
}

// FixedResponseHandler is the paper's "dummy Google Web services":
// it returns a precomputed response envelope for each operation —
// identical bytes on every request — so the back end cannot become
// the bottleneck in the portal scenario (Section 5.2). The operation
// is sniffed from the request body without parsing it.
type FixedResponseHandler struct {
	once      sync.Once
	initErr   error
	responses map[string][]byte
}

var _ http.Handler = (*FixedResponseHandler)(nil)

// NewFixedResponseHandler returns a handler with lazily precomputed
// responses.
func NewFixedResponseHandler() *FixedResponseHandler {
	return &FixedResponseHandler{}
}

// init precomputes one response envelope per operation.
func (h *FixedResponseHandler) init() {
	reg := typemap.NewRegistry()
	if err := RegisterTypes(reg); err != nil {
		h.initErr = err
		return
	}
	codec := soap.NewCodec(reg)
	h.responses = make(map[string][]byte, 3)
	for op, result := range map[string]any{
		OpSpellingSuggestion: SpellingSuggestion("web servises cashing"),
		OpGetCachedPage:      CachedPage("http://example.com/fixed"),
		OpGoogleSearch:       Search("fixed query", 0, 10),
	} {
		doc, err := codec.EncodeResponse(Namespace, op, result)
		if err != nil {
			h.initErr = err
			return
		}
		h.responses[op] = doc
	}
}

// ServeHTTP implements http.Handler.
func (h *FixedResponseHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.once.Do(h.init)
	if h.initErr != nil {
		http.Error(w, h.initErr.Error(), http.StatusInternalServerError)
		return
	}
	buf := make([]byte, 4096)
	n, _ := r.Body.Read(buf)
	body := string(buf[:n])
	for op, resp := range h.responses {
		if strings.Contains(body, op) {
			w.Header().Set("Content-Type", `text/xml; charset=utf-8`)
			_, _ = w.Write(resp)
			return
		}
	}
	http.Error(w, "unknown operation", http.StatusBadRequest)
}

// SearchParams builds the full doGoogleSearch parameter list in the
// real API's order: 6 strings, 2 ints, 2 booleans (Table 5).
func SearchParams(key, q string, start, maxResults int, filter bool, restrict string, safeSearch bool, lr string) []soap.Param {
	return []soap.Param{
		{Name: "key", Value: key},
		{Name: "q", Value: q},
		{Name: "start", Value: start},
		{Name: "maxResults", Value: maxResults},
		{Name: "filter", Value: filter},
		{Name: "restrict", Value: restrict},
		{Name: "safeSearch", Value: safeSearch},
		{Name: "lr", Value: lr},
		{Name: "ie", Value: "latin1"},
		{Name: "oe", Value: "latin1"},
	}
}

// SpellingParams builds the doSpellingSuggestion parameter list:
// 2 strings (Table 5).
func SpellingParams(key, phrase string) []soap.Param {
	return []soap.Param{
		{Name: "key", Value: key},
		{Name: "phrase", Value: phrase},
	}
}

// CachedPageParams builds the doGetCachedPage parameter list:
// 2 strings (Table 5).
func CachedPageParams(key, url string) []soap.Param {
	return []soap.Param{
		{Name: "key", Value: key},
		{Name: "url", Value: url},
	}
}
