package googleapi

// WSDL is the GoogleSearch service description, reconstructed from the
// published Google Web APIs (beta) WSDL: the three operations, their
// rpc/encoded SOAP binding, and the schema types for the search result
// object model.
const WSDL = `<?xml version="1.0"?>
<wsdl:definitions name="GoogleSearch"
    targetNamespace="urn:GoogleSearch"
    xmlns:typens="urn:GoogleSearch"
    xmlns:xsd="http://www.w3.org/2001/XMLSchema"
    xmlns:wsdl="http://schemas.xmlsoap.org/wsdl/"
    xmlns:soap="http://schemas.xmlsoap.org/wsdl/soap/"
    xmlns:soapenc="http://schemas.xmlsoap.org/soap/encoding/">

  <wsdl:types>
    <xsd:schema xmlns="http://www.w3.org/2001/XMLSchema"
        xmlns:xsd="http://www.w3.org/2001/XMLSchema"
        targetNamespace="urn:GoogleSearch">

      <xsd:complexType name="GoogleSearchResult">
        <xsd:sequence>
          <xsd:element name="documentFiltering"          type="xsd:boolean"/>
          <xsd:element name="searchComments"             type="xsd:string"/>
          <xsd:element name="estimatedTotalResultsCount" type="xsd:int"/>
          <xsd:element name="estimateIsExact"            type="xsd:boolean"/>
          <xsd:element name="resultElements"             type="typens:ResultElementArray"/>
          <xsd:element name="searchQuery"                type="xsd:string"/>
          <xsd:element name="startIndex"                 type="xsd:int"/>
          <xsd:element name="endIndex"                   type="xsd:int"/>
          <xsd:element name="searchTips"                 type="xsd:string"/>
          <xsd:element name="directoryCategories"        type="typens:DirectoryCategoryArray"/>
          <xsd:element name="searchTime"                 type="xsd:double"/>
        </xsd:sequence>
      </xsd:complexType>

      <xsd:complexType name="ResultElement">
        <xsd:sequence>
          <xsd:element name="summary"                   type="xsd:string"/>
          <xsd:element name="URL"                       type="xsd:string"/>
          <xsd:element name="snippet"                   type="xsd:string"/>
          <xsd:element name="title"                     type="xsd:string"/>
          <xsd:element name="cachedSize"                type="xsd:string"/>
          <xsd:element name="relatedInformationPresent" type="xsd:boolean"/>
          <xsd:element name="hostName"                  type="xsd:string"/>
          <xsd:element name="directoryCategory"         type="typens:DirectoryCategory"/>
          <xsd:element name="directoryTitle"            type="xsd:string"/>
          <xsd:element name="language"                  type="xsd:string"/>
        </xsd:sequence>
      </xsd:complexType>

      <xsd:complexType name="ResultElementArray">
        <xsd:complexContent>
          <xsd:restriction base="soapenc:Array"
              xmlns:soapenc="http://schemas.xmlsoap.org/soap/encoding/">
            <xsd:attribute ref="soapenc:arrayType"
                wsdl:arrayType="typens:ResultElement[]"
                xmlns:wsdl="http://schemas.xmlsoap.org/wsdl/"/>
          </xsd:restriction>
        </xsd:complexContent>
      </xsd:complexType>

      <xsd:complexType name="DirectoryCategoryArray">
        <xsd:complexContent>
          <xsd:restriction base="soapenc:Array"
              xmlns:soapenc="http://schemas.xmlsoap.org/soap/encoding/">
            <xsd:attribute ref="soapenc:arrayType"
                wsdl:arrayType="typens:DirectoryCategory[]"
                xmlns:wsdl="http://schemas.xmlsoap.org/wsdl/"/>
          </xsd:restriction>
        </xsd:complexContent>
      </xsd:complexType>

      <xsd:complexType name="DirectoryCategory">
        <xsd:sequence>
          <xsd:element name="fullViewableName" type="xsd:string"/>
          <xsd:element name="specialEncoding"  type="xsd:string"/>
        </xsd:sequence>
      </xsd:complexType>
    </xsd:schema>
  </wsdl:types>

  <wsdl:message name="doGetCachedPage">
    <wsdl:part name="key" type="xsd:string"/>
    <wsdl:part name="url" type="xsd:string"/>
  </wsdl:message>
  <wsdl:message name="doGetCachedPageResponse">
    <wsdl:part name="return" type="xsd:base64Binary"/>
  </wsdl:message>

  <wsdl:message name="doSpellingSuggestion">
    <wsdl:part name="key"    type="xsd:string"/>
    <wsdl:part name="phrase" type="xsd:string"/>
  </wsdl:message>
  <wsdl:message name="doSpellingSuggestionResponse">
    <wsdl:part name="return" type="xsd:string"/>
  </wsdl:message>

  <wsdl:message name="doGoogleSearch">
    <wsdl:part name="key"        type="xsd:string"/>
    <wsdl:part name="q"          type="xsd:string"/>
    <wsdl:part name="start"      type="xsd:int"/>
    <wsdl:part name="maxResults" type="xsd:int"/>
    <wsdl:part name="filter"     type="xsd:boolean"/>
    <wsdl:part name="restrict"   type="xsd:string"/>
    <wsdl:part name="safeSearch" type="xsd:boolean"/>
    <wsdl:part name="lr"         type="xsd:string"/>
    <wsdl:part name="ie"         type="xsd:string"/>
    <wsdl:part name="oe"         type="xsd:string"/>
  </wsdl:message>
  <wsdl:message name="doGoogleSearchResponse">
    <wsdl:part name="return" type="typens:GoogleSearchResult"/>
  </wsdl:message>

  <wsdl:message name="doGetItem">
    <wsdl:part name="key" type="xsd:string"/>
  </wsdl:message>
  <wsdl:message name="doGetItemResponse">
    <wsdl:part name="return" type="xsd:string"/>
  </wsdl:message>

  <wsdl:message name="doPutItem">
    <wsdl:part name="key"   type="xsd:string"/>
    <wsdl:part name="value" type="xsd:string"/>
  </wsdl:message>
  <wsdl:message name="doPutItemResponse">
    <wsdl:part name="return" type="xsd:string"/>
  </wsdl:message>

  <wsdl:message name="doListItems">
  </wsdl:message>
  <wsdl:message name="doListItemsResponse">
    <wsdl:part name="return" type="xsd:string"/>
  </wsdl:message>

  <wsdl:portType name="GoogleSearchPort">
    <wsdl:operation name="doGetCachedPage">
      <wsdl:input message="typens:doGetCachedPage"/>
      <wsdl:output message="typens:doGetCachedPageResponse"/>
    </wsdl:operation>
    <wsdl:operation name="doSpellingSuggestion">
      <wsdl:input message="typens:doSpellingSuggestion"/>
      <wsdl:output message="typens:doSpellingSuggestionResponse"/>
    </wsdl:operation>
    <wsdl:operation name="doGoogleSearch">
      <wsdl:input message="typens:doGoogleSearch"/>
      <wsdl:output message="typens:doGoogleSearchResponse"/>
    </wsdl:operation>
    <wsdl:operation name="doGetItem">
      <wsdl:input message="typens:doGetItem"/>
      <wsdl:output message="typens:doGetItemResponse"/>
    </wsdl:operation>
    <wsdl:operation name="doPutItem">
      <wsdl:input message="typens:doPutItem"/>
      <wsdl:output message="typens:doPutItemResponse"/>
    </wsdl:operation>
    <wsdl:operation name="doListItems">
      <wsdl:input message="typens:doListItems"/>
      <wsdl:output message="typens:doListItemsResponse"/>
    </wsdl:operation>
  </wsdl:portType>

  <wsdl:binding name="GoogleSearchBinding" type="typens:GoogleSearchPort">
    <soap:binding style="rpc" transport="http://schemas.xmlsoap.org/soap/http"/>
    <wsdl:operation name="doGetCachedPage">
      <soap:operation soapAction="urn:GoogleSearchAction"/>
      <wsdl:input>
        <soap:body use="encoded" namespace="urn:GoogleSearch"
            encodingStyle="http://schemas.xmlsoap.org/soap/encoding/"/>
      </wsdl:input>
      <wsdl:output>
        <soap:body use="encoded" namespace="urn:GoogleSearch"
            encodingStyle="http://schemas.xmlsoap.org/soap/encoding/"/>
      </wsdl:output>
    </wsdl:operation>
    <wsdl:operation name="doSpellingSuggestion">
      <soap:operation soapAction="urn:GoogleSearchAction"/>
      <wsdl:input>
        <soap:body use="encoded" namespace="urn:GoogleSearch"
            encodingStyle="http://schemas.xmlsoap.org/soap/encoding/"/>
      </wsdl:input>
      <wsdl:output>
        <soap:body use="encoded" namespace="urn:GoogleSearch"
            encodingStyle="http://schemas.xmlsoap.org/soap/encoding/"/>
      </wsdl:output>
    </wsdl:operation>
    <wsdl:operation name="doGoogleSearch">
      <soap:operation soapAction="urn:GoogleSearchAction"/>
      <wsdl:input>
        <soap:body use="encoded" namespace="urn:GoogleSearch"
            encodingStyle="http://schemas.xmlsoap.org/soap/encoding/"/>
      </wsdl:input>
      <wsdl:output>
        <soap:body use="encoded" namespace="urn:GoogleSearch"
            encodingStyle="http://schemas.xmlsoap.org/soap/encoding/"/>
      </wsdl:output>
    </wsdl:operation>
    <wsdl:operation name="doGetItem">
      <soap:operation soapAction="urn:GoogleSearchAction"/>
      <wsdl:input>
        <soap:body use="encoded" namespace="urn:GoogleSearch"
            encodingStyle="http://schemas.xmlsoap.org/soap/encoding/"/>
      </wsdl:input>
      <wsdl:output>
        <soap:body use="encoded" namespace="urn:GoogleSearch"
            encodingStyle="http://schemas.xmlsoap.org/soap/encoding/"/>
      </wsdl:output>
    </wsdl:operation>
    <wsdl:operation name="doPutItem">
      <soap:operation soapAction="urn:GoogleSearchAction"/>
      <wsdl:input>
        <soap:body use="encoded" namespace="urn:GoogleSearch"
            encodingStyle="http://schemas.xmlsoap.org/soap/encoding/"/>
      </wsdl:input>
      <wsdl:output>
        <soap:body use="encoded" namespace="urn:GoogleSearch"
            encodingStyle="http://schemas.xmlsoap.org/soap/encoding/"/>
      </wsdl:output>
    </wsdl:operation>
    <wsdl:operation name="doListItems">
      <soap:operation soapAction="urn:GoogleSearchAction"/>
      <wsdl:input>
        <soap:body use="encoded" namespace="urn:GoogleSearch"
            encodingStyle="http://schemas.xmlsoap.org/soap/encoding/"/>
      </wsdl:input>
      <wsdl:output>
        <soap:body use="encoded" namespace="urn:GoogleSearch"
            encodingStyle="http://schemas.xmlsoap.org/soap/encoding/"/>
      </wsdl:output>
    </wsdl:operation>
  </wsdl:binding>

  <wsdl:service name="GoogleSearchService">
    <wsdl:port name="GoogleSearchPort" binding="typens:GoogleSearchBinding">
      <soap:address location="http://api.google.com/search/beta2"/>
    </wsdl:port>
  </wsdl:service>
</wsdl:definitions>`
