package googleapi

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/client"
	"repro/internal/soap"
	"repro/internal/transport"
	"repro/internal/typemap"
	"repro/internal/wsdl"
)

func TestGeneratorsDeterministic(t *testing.T) {
	if SpellingSuggestion("worl peace") != SpellingSuggestion("worl peace") {
		t.Error("spelling not deterministic")
	}
	if !bytes.Equal(CachedPage("http://a/"), CachedPage("http://a/")) {
		t.Error("cached page not deterministic")
	}
	if !reflect.DeepEqual(Search("q", 0, 10), Search("q", 0, 10)) {
		t.Error("search not deterministic")
	}
}

func TestGeneratorsDistinctInputs(t *testing.T) {
	if SpellingSuggestion("alpha beta") == SpellingSuggestion("gamma delta") {
		t.Error("distinct phrases gave identical suggestions")
	}
	if bytes.Equal(CachedPage("http://a/"), CachedPage("http://b/")) {
		t.Error("distinct urls gave identical pages")
	}
	if reflect.DeepEqual(Search("one", 0, 10), Search("two", 0, 10)) {
		t.Error("distinct queries gave identical results")
	}
}

func TestSearchShapeMatchesPaper(t *testing.T) {
	r := Search("golang", 0, 10)
	// Table 5 / Section 5.1: 11 fields on the result type.
	if n := reflect.TypeOf(*r).NumField(); n != 11 {
		t.Errorf("GoogleSearchResult has %d fields, want 11", n)
	}
	// ResultElement: 10 fields, 9 simple + 1 DirectoryCategory.
	if n := reflect.TypeOf(ResultElement{}).NumField(); n != 10 {
		t.Errorf("ResultElement has %d fields, want 10", n)
	}
	if n := reflect.TypeOf(DirectoryCategory{}).NumField(); n != 2 {
		t.Errorf("DirectoryCategory has %d fields, want 2", n)
	}
	if len(r.ResultElements) == 0 {
		t.Error("no result elements")
	}
	if r.SearchQuery != "golang" {
		t.Errorf("query = %q", r.SearchQuery)
	}
	if r.StartIndex != 1 || r.EndIndex != len(r.ResultElements) {
		t.Errorf("index range = %d..%d", r.StartIndex, r.EndIndex)
	}
}

func TestSearchMaxResults(t *testing.T) {
	r := Search("q", 0, 2)
	if len(r.ResultElements) != 2 {
		t.Errorf("got %d elements, want 2", len(r.ResultElements))
	}
}

func TestCloneDeepSubTypes(t *testing.T) {
	re := &ResultElement{Title: "t", DirectoryCategory: DirectoryCategory{FullViewableName: "Top"}}
	cre := re.CloneDeep().(*ResultElement)
	if cre == re || !reflect.DeepEqual(cre, re) {
		t.Error("ResultElement clone broken")
	}
	cre.DirectoryCategory.FullViewableName = "mutated"
	if re.DirectoryCategory.FullViewableName != "Top" {
		t.Error("ResultElement clone aliased")
	}

	dc := &DirectoryCategory{FullViewableName: "Top", SpecialEncoding: "u"}
	cdc := dc.CloneDeep().(*DirectoryCategory)
	if cdc == dc || *cdc != *dc {
		t.Error("DirectoryCategory clone broken")
	}
}

func TestCloneDeepIndependence(t *testing.T) {
	orig := Search("clone me", 0, 10)
	cp := orig.CloneDeep().(*GoogleSearchResult)
	if !reflect.DeepEqual(orig, cp) {
		t.Fatal("clone differs")
	}
	cp.ResultElements[0].Title = "mutated"
	cp.DirectoryCategories[0].FullViewableName = "mutated"
	cp.SearchQuery = "mutated"
	if orig.ResultElements[0].Title == "mutated" ||
		orig.DirectoryCategories[0].FullViewableName == "mutated" ||
		orig.SearchQuery == "mutated" {
		t.Error("clone aliased the original")
	}
}

func TestResponseXMLSizesNearPaper(t *testing.T) {
	// Table 9 reports 520 / 5338 / 5024 bytes for the three response
	// XML messages. The simulation must land in the same regime (same
	// order of magnitude and ranking), not byte-for-byte.
	reg := typemap.NewRegistry()
	if err := RegisterTypes(reg); err != nil {
		t.Fatal(err)
	}
	codec := soap.NewCodec(reg)

	sizes := map[string]int{}
	for op, result := range map[string]any{
		OpSpellingSuggestion: SpellingSuggestion("web servises cashing"),
		OpGetCachedPage:      CachedPage("http://example.com/fixed"),
		OpGoogleSearch:       Search("fixed query", 0, 10),
	} {
		doc, err := codec.EncodeResponse(Namespace, op, result)
		if err != nil {
			t.Fatal(err)
		}
		sizes[op] = len(doc)
	}
	t.Logf("response XML sizes: %v", sizes)

	if s := sizes[OpSpellingSuggestion]; s < 300 || s > 1000 {
		t.Errorf("spelling XML = %d bytes, want ≈520", s)
	}
	if s := sizes[OpGetCachedPage]; s < 4200 || s > 6500 {
		t.Errorf("cached page XML = %d bytes, want ≈5338", s)
	}
	if s := sizes[OpGoogleSearch]; s < 4000 || s > 6500 {
		t.Errorf("search XML = %d bytes, want ≈5024", s)
	}
}

func TestDispatcherEndToEnd(t *testing.T) {
	d, codec, err := NewDispatcher()
	if err != nil {
		t.Fatal(err)
	}
	tr := &transport.InProcess{Handler: d}

	invoke := func(op string, params []soap.Param) any {
		t.Helper()
		call := client.NewCall(codec, tr, Endpoint, Namespace, op, "urn:GoogleSearchAction", client.Options{})
		res, err := call.Invoke(context.Background(), params...)
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		return res
	}

	if s, ok := invoke(OpSpellingSuggestion, SpellingParams("k", "helo wrld")).(string); !ok || s == "" {
		t.Errorf("spelling = %#v", s)
	}
	if b, ok := invoke(OpGetCachedPage, CachedPageParams("k", "http://x/")).([]byte); !ok || len(b) != CachedPageSize {
		t.Errorf("cached page type/size wrong: %T len %d", b, len(b))
	}
	r, ok := invoke(OpGoogleSearch, SearchParams("k", "golang", 0, 10, false, "", false, "")).(*GoogleSearchResult)
	if !ok {
		t.Fatalf("search result type wrong")
	}
	if !reflect.DeepEqual(r, Search("golang", 0, 10)) {
		t.Error("dispatcher result differs from generator")
	}
}

func TestFixedResponseHandler(t *testing.T) {
	h := NewFixedResponseHandler()
	tr := &transport.InProcess{Handler: h}

	reg := typemap.NewRegistry()
	if err := RegisterTypes(reg); err != nil {
		t.Fatal(err)
	}
	codec := soap.NewCodec(reg)

	call := client.NewCall(codec, tr, Endpoint, Namespace, OpGoogleSearch, "", client.Options{})
	res1, err := call.Invoke(context.Background(), SearchParams("k", "anything", 0, 10, false, "", false, "")...)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := call.Invoke(context.Background(), SearchParams("k", "something else", 0, 10, false, "", false, "")...)
	if err != nil {
		t.Fatal(err)
	}
	// Identical payloads regardless of the query: fixed responses.
	if !reflect.DeepEqual(res1, res2) {
		t.Error("fixed handler returned varying responses")
	}

	// All three operations are served.
	for _, op := range Operations {
		c := client.NewCall(codec, tr, Endpoint, Namespace, op, "", client.Options{})
		var params []soap.Param
		switch op {
		case OpSpellingSuggestion:
			params = SpellingParams("k", "x")
		case OpGetCachedPage:
			params = CachedPageParams("k", "http://x/")
		default:
			params = SearchParams("k", "x", 0, 10, false, "", false, "")
		}
		if _, err := c.Invoke(context.Background(), params...); err != nil {
			t.Errorf("%s: %v", op, err)
		}
	}
}

func TestWSDLParsesAndMatchesService(t *testing.T) {
	defs, err := wsdl.Parse([]byte(WSDL))
	if err != nil {
		t.Fatal(err)
	}
	if defs.Name != "GoogleSearch" || defs.TargetNamespace != Namespace {
		t.Errorf("defs = %s %s", defs.Name, defs.TargetNamespace)
	}
	for _, op := range Operations {
		if _, ok := defs.Operation(op); !ok {
			t.Errorf("operation %s missing from WSDL", op)
		}
	}
	in, out, err := defs.OperationIO(OpGoogleSearch)
	if err != nil {
		t.Fatal(err)
	}
	// Table 5: 6 strings, 2 ints, 2 booleans.
	var nStr, nInt, nBool int
	for _, p := range in.Parts {
		switch p.Type.Local {
		case "string":
			nStr++
		case "int":
			nInt++
		case "boolean":
			nBool++
		}
	}
	if nStr != 6 || nInt != 2 || nBool != 2 {
		t.Errorf("doGoogleSearch params: %d strings, %d ints, %d bools", nStr, nInt, nBool)
	}
	if out.Parts[0].Type.Local != "GoogleSearchResult" {
		t.Errorf("return type = %v", out.Parts[0].Type)
	}

	// Schema types resolve.
	gsr, ok := defs.SchemaType(typemap.QName{Space: Namespace, Local: "GoogleSearchResult"})
	if !ok {
		t.Fatal("GoogleSearchResult type missing")
	}
	if len(gsr.Elements) != 11 {
		t.Errorf("schema GoogleSearchResult has %d elements, want 11", len(gsr.Elements))
	}
	loc, ok := defs.Endpoint()
	if !ok || !strings.Contains(loc, "api.google.com") {
		t.Errorf("endpoint = %q", loc)
	}

	// WSDL-driven service wiring works against the dummy dispatcher.
	d, codec, err := NewDispatcher()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := client.NewService(defs, codec, &transport.InProcess{Handler: d}, client.ServiceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := svc.Invoke(context.Background(), OpSpellingSuggestion, SpellingParams("k", "tst")...)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.(string); !ok {
		t.Errorf("result = %T", res)
	}
}

func TestDispatcherMissingParamFault(t *testing.T) {
	d, codec, err := NewDispatcher()
	if err != nil {
		t.Fatal(err)
	}
	req, _ := codec.EncodeRequest(Namespace, OpGoogleSearch, nil)
	resp, isFault, err := d.Handle(req)
	if err != nil || !isFault {
		t.Fatalf("err=%v fault=%v", err, isFault)
	}
	msg, _ := codec.DecodeEnvelope(resp)
	if msg.Fault == nil {
		t.Error("expected fault for missing params")
	}
}
