// Package googleapi simulates the Google SOAP Search API (beta) that
// the paper's experiments call: doSpellingSuggestion, doGetCachedPage,
// and doGoogleSearch (Table 1). The real service was retired in 2006,
// so this package substitutes a faithful synthetic implementation: the
// same WSDL shape, the same application-object structure (Table 5 and
// Section 5.1), and deterministic generated payloads whose XML and
// object sizes are calibrated to the paper's Table 9.
//
// The three operations were chosen in the paper for their return-value
// classes, which the simulation preserves:
//
//   - doSpellingSuggestion → string                (small and simple)
//   - doGetCachedPage      → []byte (base64)       (large and simple)
//   - doGoogleSearch       → *GoogleSearchResult   (large and complex)
package googleapi

import (
	"repro/internal/typemap"
)

// Namespace is the target namespace of the Google Web APIs WSDL.
const Namespace = "urn:GoogleSearch"

// Endpoint is the historical service endpoint, used as the default
// cache-key endpoint component.
const Endpoint = "http://api.google.com/search/beta2"

// Operation names.
const (
	OpSpellingSuggestion = "doSpellingSuggestion"
	OpGetCachedPage      = "doGetCachedPage"
	OpGoogleSearch       = "doGoogleSearch"
)

// Operations lists the three operations of the service. All three are
// cacheable retrieval operations (Section 3.2).
var Operations = []string{OpSpellingSuggestion, OpGetCachedPage, OpGoogleSearch}

// DirectoryCategory is an Open Directory category attached to results.
// Two string fields, exactly as in the paper's description.
type DirectoryCategory struct {
	FullViewableName string
	SpecialEncoding  string
}

// CloneDeep implements typemap.Cloner. DirectoryCategory has only
// immutable fields, so a value copy is a deep copy.
func (d *DirectoryCategory) CloneDeep() any {
	out := *d
	return &out
}

// ResultElement is a single search hit: nine simple-typed fields plus
// one DirectoryCategory, matching the paper's ten-field description
// (Section 5.1). The Language field rounds the published WSDL's nine
// elements up to the paper's count of ten.
type ResultElement struct {
	Summary                   string
	URL                       string `xml:"URL"`
	Snippet                   string
	Title                     string
	CachedSize                string
	RelatedInformationPresent bool
	HostName                  string
	DirectoryCategory         DirectoryCategory
	DirectoryTitle            string
	Language                  string
}

// CloneDeep implements typemap.Cloner.
func (r *ResultElement) CloneDeep() any {
	out := *r
	return &out
}

// GoogleSearchResult encapsulates the complete results of a search:
// nine simple fields, an array of ResultElement, and an array of
// DirectoryCategory — eleven fields, matching Section 5.1.
type GoogleSearchResult struct {
	DocumentFiltering          bool
	SearchComments             string
	EstimatedTotalResultsCount int
	EstimateIsExact            bool
	ResultElements             []ResultElement
	SearchQuery                string
	StartIndex                 int
	EndIndex                   int
	SearchTips                 string
	DirectoryCategories        []DirectoryCategory
	SearchTime                 float64
}

// CloneDeep implements typemap.Cloner: the deep clone method the paper
// says a WSDL compiler should generate for its classes (Section
// 4.2.3-C).
func (g *GoogleSearchResult) CloneDeep() any {
	out := *g
	if g.ResultElements != nil {
		out.ResultElements = make([]ResultElement, len(g.ResultElements))
		copy(out.ResultElements, g.ResultElements)
	}
	if g.DirectoryCategories != nil {
		out.DirectoryCategories = make([]DirectoryCategory, len(g.DirectoryCategories))
		copy(out.DirectoryCategories, g.DirectoryCategories)
	}
	return &out
}

// Compile-time checks that the generated types implement Cloner.
var (
	_ typemap.Cloner = (*GoogleSearchResult)(nil)
	_ typemap.Cloner = (*ResultElement)(nil)
	_ typemap.Cloner = (*DirectoryCategory)(nil)
)

// RegisterTypes registers the service's complex types in a registry, as
// the WSDL compiler's generated deployment descriptor would.
func RegisterTypes(reg *typemap.Registry) error {
	for _, b := range []struct {
		local string
		proto any
	}{
		{"DirectoryCategory", DirectoryCategory{}},
		{"ResultElement", ResultElement{}},
		{"GoogleSearchResult", GoogleSearchResult{}},
	} {
		if err := reg.Register(typemap.QName{Space: Namespace, Local: b.local}, b.proto); err != nil {
			return err
		}
	}
	return nil
}
