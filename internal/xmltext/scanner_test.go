package xmltext

import (
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

// collect scans the whole document and returns all tokens.
func collect(t *testing.T, doc string) []Token {
	t.Helper()
	sc := NewScanner([]byte(doc))
	var toks []Token
	for {
		tok, err := sc.Next()
		if errors.Is(err, io.EOF) {
			return toks
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		toks = append(toks, tok)
	}
}

// scanErr scans until an error and returns it (nil if the document is
// well-formed).
func scanErr(doc string) error {
	sc := NewScanner([]byte(doc))
	for {
		_, err := sc.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

func TestScannerSimpleDocument(t *testing.T) {
	toks := collect(t, `<doc><para>Hello, world!</para></doc>`)
	want := []Token{
		{Kind: KindStartElement, Name: "doc"},
		{Kind: KindStartElement, Name: "para"},
		{Kind: KindCharData, Text: "Hello, world!"},
		{Kind: KindEndElement, Name: "para"},
		{Kind: KindEndElement, Name: "doc"},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %+v", len(toks), len(want), toks)
	}
	for i, w := range want {
		g := toks[i]
		if g.Kind != w.Kind || g.Name != w.Name || g.Text != w.Text {
			t.Errorf("token %d: got %+v, want %+v", i, g, w)
		}
	}
}

func TestScannerAttributes(t *testing.T) {
	toks := collect(t, `<a x="1" y='two' z="a&amp;b &lt;c&gt; &quot;q&quot; &#65;"/>`)
	if len(toks) != 2 {
		t.Fatalf("got %d tokens, want 2", len(toks))
	}
	st := toks[0]
	if !st.SelfClosing {
		t.Error("expected self-closing tag")
	}
	want := []Attr{
		{Name: "x", Value: "1"},
		{Name: "y", Value: "two"},
		{Name: "z", Value: `a&b <c> "q" A`},
	}
	if len(st.Attrs) != len(want) {
		t.Fatalf("got %d attrs, want %d", len(st.Attrs), len(want))
	}
	for i, w := range want {
		if st.Attrs[i] != w {
			t.Errorf("attr %d: got %+v, want %+v", i, st.Attrs[i], w)
		}
	}
	if toks[1].Kind != KindEndElement || toks[1].Name != "a" {
		t.Errorf("expected synthesized end element, got %+v", toks[1])
	}
}

func TestScannerEntities(t *testing.T) {
	toks := collect(t, `<t>&lt;tag&gt; &amp; &apos;x&apos; &quot;y&quot; &#x41;&#66;</t>`)
	if got, want := toks[1].Text, `<tag> & 'x' "y" AB`; got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestScannerCDATA(t *testing.T) {
	toks := collect(t, `<t><![CDATA[<not><parsed> & raw]]></t>`)
	if got, want := toks[1].Text, `<not><parsed> & raw`; got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestScannerCommentAndPI(t *testing.T) {
	toks := collect(t, "<?xml version=\"1.0\"?><!-- hello --><t><?php echo ?></t>")
	if toks[0].Kind != KindProcInst || toks[0].Name != "xml" {
		t.Errorf("expected xml decl first, got %+v", toks[0])
	}
	if toks[1].Kind != KindComment || toks[1].Text != " hello " {
		t.Errorf("expected comment, got %+v", toks[1])
	}
	if toks[3].Kind != KindProcInst || toks[3].Name != "php" || toks[3].Text != "echo " {
		t.Errorf("expected pi, got %+v", toks[3])
	}
}

func TestScannerDoctype(t *testing.T) {
	toks := collect(t, `<!DOCTYPE doc [ <!ELEMENT doc ANY> ]><doc/>`)
	if toks[0].Kind != KindDirective {
		t.Fatalf("expected directive, got %+v", toks[0])
	}
	if !strings.HasPrefix(toks[0].Text, "DOCTYPE") {
		t.Errorf("directive text = %q", toks[0].Text)
	}
}

func TestScannerNestedSameName(t *testing.T) {
	toks := collect(t, `<a><a><a/></a></a>`)
	opens, closes := 0, 0
	for _, tok := range toks {
		switch tok.Kind {
		case KindStartElement:
			opens++
		case KindEndElement:
			closes++
		}
	}
	if opens != 3 || closes != 3 {
		t.Errorf("got %d opens, %d closes; want 3/3", opens, closes)
	}
}

func TestScannerMixedContent(t *testing.T) {
	toks := collect(t, `<p>one<b>two</b>three</p>`)
	var texts []string
	for _, tok := range toks {
		if tok.Kind == KindCharData {
			texts = append(texts, tok.Text)
		}
	}
	if len(texts) != 3 || texts[0] != "one" || texts[1] != "two" || texts[2] != "three" {
		t.Errorf("texts = %q", texts)
	}
}

func TestScannerUTF8Names(t *testing.T) {
	toks := collect(t, `<日本語 属性="値">テキスト</日本語>`)
	if toks[0].Name != "日本語" {
		t.Errorf("name = %q", toks[0].Name)
	}
	if toks[0].Attrs[0].Name != "属性" || toks[0].Attrs[0].Value != "値" {
		t.Errorf("attr = %+v", toks[0].Attrs[0])
	}
	if toks[1].Text != "テキスト" {
		t.Errorf("text = %q", toks[1].Text)
	}
}

func TestScannerErrors(t *testing.T) {
	cases := map[string]string{
		"empty document":          ``,
		"no root, only comment":   `<!-- x -->`,
		"unclosed element":        `<a><b></b>`,
		"mismatched end tag":      `<a></b>`,
		"stray end tag":           `</a>`,
		"multiple roots":          `<a/><b/>`,
		"text outside root":       `<a/>junk`,
		"bad entity":              `<a>&bogus;</a>`,
		"unterminated entity":     `<a>&ltx</a>`,
		"bad char ref":            `<a>&#xZZ;</a>`,
		"illegal char ref":        `<a>&#0;</a>`,
		"duplicate attribute":     `<a x="1" x="2"/>`,
		"attr missing equals":     `<a x"1"/>`,
		"attr missing quote":      `<a x=1/>`,
		"unterminated attr value": `<a x="1`,
		"lt in attr value":        `<a x="<"/>`,
		"unterminated comment":    `<a><!-- never closed`,
		"double dash in comment":  `<a><!-- a -- b --></a>`,
		"unterminated cdata":      `<a><![CDATA[never`,
		"cdata outside root":      `<![CDATA[x]]><a/>`,
		"unterminated pi":         `<a><?pi never`,
		"unterminated start tag":  `<a `,
		"bad name start":          `<1abc/>`,
		"unterminated end tag":    `<a></a`,
		"cdata close in text":     `<a>]]></a>`,
		"unterminated directive":  `<!DOCTYPE doc`,
		"eof after open bracket":  `<`,
		"garbage before root":     `hello<a/>`,
		"unterminated self-close": `<a/`,
		"attribute after slash":   `<a / x="1">`,
	}
	for name, doc := range cases {
		if err := scanErr(doc); err == nil {
			t.Errorf("%s: expected error for %q", name, doc)
		}
	}
}

func TestScannerErrorHasPosition(t *testing.T) {
	err := scanErr("<a>\n<b>\n&bad;</b></a>")
	var se *SyntaxError
	if !errors.As(err, &se) {
		t.Fatalf("expected *SyntaxError, got %T: %v", err, err)
	}
	if se.Line != 3 {
		t.Errorf("line = %d, want 3", se.Line)
	}
	if !strings.Contains(se.Error(), "line 3") {
		t.Errorf("Error() = %q", se.Error())
	}
}

func TestScannerWhitespaceAroundRoot(t *testing.T) {
	toks := collect(t, "\n  <?xml version=\"1.0\"?>\n  <a>x</a>\n\t ")
	var roots int
	for _, tok := range toks {
		if tok.Kind == KindStartElement {
			roots++
		}
	}
	if roots != 1 {
		t.Errorf("roots = %d", roots)
	}
}

func TestIsName(t *testing.T) {
	valid := []string{"a", "abc", "a-b", "a.b", "a_b", "a1", "ns:local", "_x", "日本語"}
	for _, s := range valid {
		if !IsName(s) {
			t.Errorf("IsName(%q) = false, want true", s)
		}
	}
	invalid := []string{"", "1a", "-a", ".a", "a b", "a<b"}
	for _, s := range invalid {
		if IsName(s) {
			t.Errorf("IsName(%q) = true, want false", s)
		}
	}
}

func TestEscapeRoundTripProperty(t *testing.T) {
	// Property: any legal text survives escape → scan round-trip.
	f := func(s string) bool {
		if !IsLegalText(s) {
			return true // skip strings with illegal XML characters
		}
		doc := "<t>" + EscapeTextString(s) + "</t>"
		sc := NewScanner([]byte(doc))
		var got strings.Builder
		for {
			tok, err := sc.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				return false
			}
			if tok.Kind == KindCharData {
				got.WriteString(tok.Text)
			}
		}
		return got.String() == normalizeNewlines(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEscapeAttrRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		if !IsLegalText(s) {
			return true
		}
		doc := `<t a="` + EscapeAttrString(s) + `"/>`
		sc := NewScanner([]byte(doc))
		tok, err := sc.Next()
		if err != nil {
			return false
		}
		return len(tok.Attrs) == 1 && tok.Attrs[0].Value == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// normalizeNewlines applies the XML line-end normalization a parser
// performs on literal (unescaped) text. EscapeTextString escapes \r, so
// the only normalization visible is none; this helper exists to keep
// the property honest if the escaping policy changes.
func normalizeNewlines(s string) string { return s }

func TestSplitQName(t *testing.T) {
	cases := []struct {
		in, prefix, local string
	}{
		{"a", "", "a"},
		{"ns:a", "ns", "a"},
		{":a", "", "a"},
		{"a:", "a", ""},
	}
	for _, c := range cases {
		p, l := SplitQName(c.in)
		if p != c.prefix || l != c.local {
			t.Errorf("SplitQName(%q) = (%q, %q), want (%q, %q)", c.in, p, l, c.prefix, c.local)
		}
	}
}

func TestEscapeAttrControlChars(t *testing.T) {
	got := EscapeAttrString("a\tb\nc\rd\"e<f>g&h")
	want := "a&#9;b&#10;c&#13;d&quot;e&lt;f&gt;g&amp;h"
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestEscapeTextNoAllocPath(t *testing.T) {
	s := "plain text with no special characters"
	if EscapeTextString(s) != s {
		t.Error("plain text should be returned unchanged")
	}
}

func TestScannerDepth(t *testing.T) {
	sc := NewScanner([]byte(`<a><b></b></a>`))
	depths := []int{}
	for {
		_, err := sc.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		depths = append(depths, sc.Depth())
	}
	want := []int{1, 2, 1, 0}
	for i := range want {
		if depths[i] != want[i] {
			t.Errorf("depths = %v, want %v", depths, want)
			break
		}
	}
}
