// Package xmltext implements a from-scratch XML 1.0 tokenizer and the
// low-level text utilities (escaping, name validation, entity
// resolution) used by the SAX and DOM layers.
//
// The tokenizer is deliberately independent of encoding/xml: the paper's
// cached-data representations require full control over the event stream
// (recording, replaying, and measuring the cost of parsing), so the
// entire XML path in this repository is self-contained.
//
// Supported XML subset: prolog (XML declaration), comments, processing
// instructions, DOCTYPE (skipped, internal subsets without markup
// declarations), elements with attributes, character data, CDATA
// sections, the five predefined entities and numeric character
// references. DTD-defined entities are not supported, matching the
// behaviour of a non-validating SOAP processor.
package xmltext

import "fmt"

// Kind identifies the type of a token produced by the Scanner.
type Kind int

// Token kinds. The zero value is invalid so that an uninitialized Token
// is never mistaken for real markup.
const (
	KindStartElement Kind = iota + 1
	KindEndElement
	KindCharData
	KindComment
	KindProcInst
	KindDirective
)

// String returns a human-readable name for the token kind.
func (k Kind) String() string {
	switch k {
	case KindStartElement:
		return "StartElement"
	case KindEndElement:
		return "EndElement"
	case KindCharData:
		return "CharData"
	case KindComment:
		return "Comment"
	case KindProcInst:
		return "ProcInst"
	case KindDirective:
		return "Directive"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Attr is a single attribute on a start-element tag. The value has all
// entity and character references resolved.
type Attr struct {
	Name  string
	Value string
}

// Token is one unit of XML markup or character data.
//
// For KindStartElement, Name and Attrs are set and SelfClosing reports
// whether the tag was of the form <name/>. For KindEndElement only Name
// is set. For KindCharData, Text holds the resolved character data (CDATA
// sections are reported as CharData). For KindComment, Text holds the
// comment body. For KindProcInst, Name holds the target and Text the
// instruction. For KindDirective, Text holds the directive body
// (e.g. a DOCTYPE declaration, excluding the <! and >).
type Token struct {
	Kind        Kind
	Name        string
	Text        string
	Attrs       []Attr
	SelfClosing bool
}

// SyntaxError describes a well-formedness violation found while
// scanning, with the byte offset and 1-based line where it occurred.
type SyntaxError struct {
	Msg    string
	Offset int
	Line   int
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("xml syntax error at line %d (offset %d): %s", e.Line, e.Offset, e.Msg)
}
