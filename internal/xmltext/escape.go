package xmltext

import (
	"strings"
)

// EscapeText appends s to b with the characters that are significant in
// XML character data ('<', '>', '&') replaced by entity references.
// Carriage returns are encoded numerically so that round-tripping
// through an XML parser (which normalizes line ends) preserves them.
func EscapeText(b *strings.Builder, s string) {
	last := 0
	for i := 0; i < len(s); i++ {
		var esc string
		switch s[i] {
		case '<':
			esc = "&lt;"
		case '>':
			esc = "&gt;"
		case '&':
			esc = "&amp;"
		case '\r':
			esc = "&#13;"
		default:
			continue
		}
		b.WriteString(s[last:i])
		b.WriteString(esc)
		last = i + 1
	}
	b.WriteString(s[last:])
}

// EscapeAttr appends s to b escaped for use inside a double-quoted
// attribute value. In addition to the character-data escapes, double
// quotes, tabs and newlines are escaped so attribute-value
// normalization cannot corrupt the value.
func EscapeAttr(b *strings.Builder, s string) {
	last := 0
	for i := 0; i < len(s); i++ {
		var esc string
		switch s[i] {
		case '<':
			esc = "&lt;"
		case '>':
			esc = "&gt;"
		case '&':
			esc = "&amp;"
		case '"':
			esc = "&quot;"
		case '\t':
			esc = "&#9;"
		case '\n':
			esc = "&#10;"
		case '\r':
			esc = "&#13;"
		default:
			continue
		}
		b.WriteString(s[last:i])
		b.WriteString(esc)
		last = i + 1
	}
	b.WriteString(s[last:])
}

// EscapeTextString returns s escaped for character data.
func EscapeTextString(s string) string {
	if !needsTextEscape(s) {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	EscapeText(&b, s)
	return b.String()
}

// EscapeAttrString returns s escaped for a double-quoted attribute.
func EscapeAttrString(s string) string {
	if !needsAttrEscape(s) {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	EscapeAttr(&b, s)
	return b.String()
}

// needsTextEscape reports whether s contains characters that EscapeText
// would rewrite, letting callers skip the Builder on the common path.
func needsTextEscape(s string) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<', '>', '&', '\r':
			return true
		}
	}
	return false
}

// needsAttrEscape reports whether s contains characters that EscapeAttr
// would rewrite.
func needsAttrEscape(s string) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<', '>', '&', '"', '\t', '\n', '\r':
			return true
		}
	}
	return false
}

// SplitQName splits a possibly prefixed XML name into its prefix and
// local parts. A name without a prefix yields an empty prefix.
func SplitQName(name string) (prefix, local string) {
	if i := strings.IndexByte(name, ':'); i >= 0 {
		return name[:i], name[i+1:]
	}
	return "", name
}
