package xmltext

import (
	"errors"
	"io"
	"testing"
)

// FuzzScanner feeds arbitrary bytes to the tokenizer: it must never
// panic or loop, only return tokens or a SyntaxError. Run longer with:
//
//	go test -fuzz FuzzScanner ./internal/xmltext
func FuzzScanner(f *testing.F) {
	seeds := []string{
		`<doc><para>Hello, world!</para></doc>`,
		`<a x="1" y='two'>&lt;&amp;&#65;</a>`,
		`<?xml version="1.0"?><!DOCTYPE d [<!ELEMENT d ANY>]><d><![CDATA[x]]></d>`,
		`<s:Envelope xmlns:s="urn:e"><s:Body/></s:Envelope>`,
		`<a><!-- comment --><?pi body?></a>`,
		`<a>]]></a>`,
		`<a`, `</a>`, `<a>&bogus;</a>`, `<日本語 属性="値"/>`,
		"<a>\xff\xfe</a>", `<a x="1" x="2"/>`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sc := NewScanner(data)
		// Token count is bounded by input length; anything more means
		// the scanner is not consuming input.
		for i := 0; i <= len(data)+2; i++ {
			tok, err := sc.Next()
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				var se *SyntaxError
				if !errors.As(err, &se) {
					t.Fatalf("non-syntax error %T: %v", err, err)
				}
				return
			}
			if tok.Kind == 0 {
				t.Fatal("zero-kind token without error")
			}
		}
		t.Fatalf("scanner produced more tokens than input bytes (%d)", len(data))
	})
}

// FuzzEscapeRoundTrip: any legal text must survive escape→scan.
func FuzzEscapeRoundTrip(f *testing.F) {
	f.Add("hello")
	f.Add("<&>\"'")
	f.Add("line\r\nbreaks\ttabs")
	f.Add("日本語テキスト")
	f.Fuzz(func(t *testing.T, s string) {
		if !IsLegalText(s) {
			t.Skip()
		}
		doc := `<t a="` + EscapeAttrString(s) + `">` + EscapeTextString(s) + `</t>`
		sc := NewScanner([]byte(doc))
		tok, err := sc.Next()
		if err != nil {
			t.Fatalf("start: %v (doc %q)", err, doc)
		}
		if tok.Attrs[0].Value != s {
			t.Fatalf("attr round trip: %q != %q", tok.Attrs[0].Value, s)
		}
		var text string
		for {
			tok, err = sc.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatalf("scan: %v", err)
			}
			if tok.Kind == KindCharData {
				text += tok.Text
			}
		}
		if text != s {
			t.Fatalf("text round trip: %q != %q", text, s)
		}
	})
}
