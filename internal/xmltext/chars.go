package xmltext

import "fmt"

// fmtSprintf exists so that scanner.go's sprintf helper has a single
// fmt dependency point.
func fmtSprintf(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}

// isSpaceByte reports whether b is XML whitespace (S production).
func isSpaceByte(b byte) bool {
	return b == ' ' || b == '\t' || b == '\r' || b == '\n'
}

// isAllSpace reports whether s consists only of XML whitespace.
func isAllSpace(s string) bool {
	for i := 0; i < len(s); i++ {
		if !isSpaceByte(s[i]) {
			return false
		}
	}
	return true
}

// isNameStartRune reports whether r may begin an XML name. This follows
// the XML 1.0 (5th edition) NameStartChar production, with ':' allowed
// because the scanner works on raw (prefix-qualified) names.
func isNameStartRune(r rune) bool {
	switch {
	case r == ':' || r == '_':
		return true
	case 'A' <= r && r <= 'Z', 'a' <= r && r <= 'z':
		return true
	case r >= 0xC0 && r <= 0xD6, r >= 0xD8 && r <= 0xF6, r >= 0xF8 && r <= 0x2FF:
		return true
	case r >= 0x370 && r <= 0x37D, r >= 0x37F && r <= 0x1FFF:
		return true
	case r >= 0x200C && r <= 0x200D, r >= 0x2070 && r <= 0x218F:
		return true
	case r >= 0x2C00 && r <= 0x2FEF, r >= 0x3001 && r <= 0xD7FF:
		return true
	case r >= 0xF900 && r <= 0xFDCF, r >= 0xFDF0 && r <= 0xFFFD:
		return true
	case r >= 0x10000 && r <= 0xEFFFF:
		return true
	}
	return false
}

// isNameRune reports whether r may appear after the first character of
// an XML name (NameChar production).
func isNameRune(r rune) bool {
	if isNameStartRune(r) {
		return true
	}
	switch {
	case r == '-' || r == '.':
		return true
	case '0' <= r && r <= '9':
		return true
	case r == 0xB7:
		return true
	case r >= 0x300 && r <= 0x36F, r >= 0x203F && r <= 0x2040:
		return true
	}
	return false
}

// IsName reports whether s is a syntactically valid XML name.
func IsName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if i == 0 {
			if !isNameStartRune(r) {
				return false
			}
			continue
		}
		if !isNameRune(r) {
			return false
		}
	}
	return true
}

// isLegalCharRef reports whether r is a character permitted in an XML
// document (Char production).
func isLegalCharRef(r rune) bool {
	switch {
	case r == 0x9 || r == 0xA || r == 0xD:
		return true
	case r >= 0x20 && r <= 0xD7FF:
		return true
	case r >= 0xE000 && r <= 0xFFFD:
		return true
	case r >= 0x10000 && r <= 0x10FFFF:
		return true
	}
	return false
}

// IsLegalText reports whether every rune in s is a legal XML character.
// Serializers use this to reject unencodable strings early.
func IsLegalText(s string) bool {
	for _, r := range s {
		if !isLegalCharRef(r) {
			return false
		}
	}
	return true
}

// hasPrefix is strings.HasPrefix over a byte slice without conversion.
func hasPrefix(b []byte, prefix string) bool {
	if len(b) < len(prefix) {
		return false
	}
	for i := 0; i < len(prefix); i++ {
		if b[i] != prefix[i] {
			return false
		}
	}
	return true
}

// indexByteFrom returns the index of c in b at or after start, or -1.
func indexByteFrom(b []byte, c byte, start int) int {
	for i := start; i < len(b); i++ {
		if b[i] == c {
			return i
		}
	}
	return -1
}

// indexFrom returns the index of sub in b at or after start, or -1.
// The needles used by the scanner are 2-3 bytes, so a simple scan beats
// converting the haystack to a string.
func indexFrom(b []byte, sub string, start int) int {
	if start < 0 {
		start = 0
	}
	if sub == "" {
		return start
	}
	last := len(b) - len(sub)
	for i := start; i <= last; i++ {
		if b[i] != sub[0] {
			continue
		}
		match := true
		for j := 1; j < len(sub); j++ {
			if b[i+j] != sub[j] {
				match = false
				break
			}
		}
		if match {
			return i
		}
	}
	return -1
}
