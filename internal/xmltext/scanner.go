package xmltext

import (
	"io"
	"strconv"
	"strings"
	"unicode/utf8"
)

// Scanner tokenizes an XML document held in memory. It is a pull
// scanner: each call to Next returns the next token or an error.
//
// The scanner operates on a byte slice rather than an io.Reader because
// the middleware always has the complete message in memory (it arrived
// as an HTTP body); this keeps the hot parse path allocation-light.
type Scanner struct {
	src  []byte
	pos  int
	line int

	// open tracks the stack of currently open element names so that
	// mismatched or unclosed tags are reported as syntax errors.
	open []string

	// sawRoot reports whether a root element has been seen; used to
	// reject documents with multiple roots or trailing garbage.
	sawRoot bool

	// pendingEnd holds an end-element to emit for a self-closing tag.
	pendingEnd string
	hasPending bool
}

// NewScanner returns a Scanner reading the given document.
func NewScanner(src []byte) *Scanner {
	return &Scanner{src: src, line: 1}
}

// errf builds a positioned syntax error.
func (s *Scanner) errf(format string, args ...any) error {
	return &SyntaxError{
		Msg:    strings.TrimSpace(sprintf(format, args...)),
		Offset: s.pos,
		Line:   s.line,
	}
}

// sprintf is a tiny indirection so errf stays on one import path.
func sprintf(format string, args ...any) string {
	if len(args) == 0 {
		return format
	}
	return fmtSprintf(format, args...)
}

// Next returns the next token in the document. It returns io.EOF after
// the document has been fully consumed. Whitespace-only character data
// outside the root element is skipped; any other content outside the
// root is an error.
func (s *Scanner) Next() (Token, error) {
	if s.hasPending {
		s.hasPending = false
		name := s.pendingEnd
		s.pendingEnd = ""
		return Token{Kind: KindEndElement, Name: name}, nil
	}

	for {
		if s.pos >= len(s.src) {
			if len(s.open) > 0 {
				return Token{}, s.errf("unexpected end of document: element <%s> is not closed", s.open[len(s.open)-1])
			}
			if !s.sawRoot {
				return Token{}, s.errf("document has no root element")
			}
			return Token{}, io.EOF
		}

		if s.src[s.pos] != '<' {
			tok, err := s.scanCharData()
			if err != nil {
				return Token{}, err
			}
			// Outside the root element only whitespace is allowed;
			// swallow it rather than reporting it as an event.
			if len(s.open) == 0 {
				if !isAllSpace(tok.Text) {
					return Token{}, s.errf("character data outside root element")
				}
				continue
			}
			return tok, nil
		}

		// A markup construct begins.
		if s.pos+1 >= len(s.src) {
			return Token{}, s.errf("unexpected end of document after '<'")
		}
		switch s.src[s.pos+1] {
		case '?':
			return s.scanProcInst()
		case '!':
			return s.scanBang()
		case '/':
			return s.scanEndElement()
		default:
			return s.scanStartElement()
		}
	}
}

// Depth returns the number of currently open elements.
func (s *Scanner) Depth() int { return len(s.open) }

// advance moves pos forward by n bytes, updating the line counter.
func (s *Scanner) advance(n int) {
	for i := 0; i < n && s.pos < len(s.src); i++ {
		if s.src[s.pos] == '\n' {
			s.line++
		}
		s.pos++
	}
}

// skipSpace consumes XML whitespace.
func (s *Scanner) skipSpace() {
	for s.pos < len(s.src) && isSpaceByte(s.src[s.pos]) {
		if s.src[s.pos] == '\n' {
			s.line++
		}
		s.pos++
	}
}

// scanCharData scans character data up to the next '<'. Entity and
// character references are resolved. Consecutive CDATA sections are not
// merged here; the SAX layer coalesces if needed.
func (s *Scanner) scanCharData() (Token, error) {
	start := s.pos
	var b strings.Builder
	plain := true // no entities encountered; can slice instead of build
	for s.pos < len(s.src) && s.src[s.pos] != '<' {
		c := s.src[s.pos]
		if c == '&' {
			if plain {
				b.Grow(len(s.src) - start)
				b.Write(s.src[start:s.pos])
				plain = false
			}
			r, err := s.scanReference()
			if err != nil {
				return Token{}, err
			}
			b.WriteString(r)
			continue
		}
		// The literal sequence "]]>" may not appear in character data
		// (XML 1.0 §2.4); the raw bytes are checked so the escaped form
		// "]]&gt;" stays legal.
		if c == ']' && s.pos+2 < len(s.src) && s.src[s.pos+1] == ']' && s.src[s.pos+2] == '>' {
			return Token{}, s.errf("']]>' not allowed in character data")
		}
		if c == '\n' {
			s.line++
		}
		if !plain {
			b.WriteByte(c)
		}
		s.pos++
	}
	var text string
	if plain {
		text = string(s.src[start:s.pos])
	} else {
		text = b.String()
	}
	return Token{Kind: KindCharData, Text: text}, nil
}

// scanReference resolves an entity or character reference beginning at
// the current '&'.
func (s *Scanner) scanReference() (string, error) {
	semi := indexByteFrom(s.src, ';', s.pos+1)
	if semi < 0 || semi-s.pos > 12 {
		return "", s.errf("unterminated entity reference")
	}
	ref := string(s.src[s.pos+1 : semi])
	s.pos = semi + 1
	if ref == "" {
		return "", s.errf("empty entity reference")
	}
	if ref[0] == '#' {
		return s.resolveCharRef(ref)
	}
	switch ref {
	case "lt":
		return "<", nil
	case "gt":
		return ">", nil
	case "amp":
		return "&", nil
	case "apos":
		return "'", nil
	case "quot":
		return `"`, nil
	}
	return "", s.errf("unknown entity &%s;", ref)
}

// resolveCharRef resolves a numeric character reference body such as
// "#x3C" or "#60".
func (s *Scanner) resolveCharRef(ref string) (string, error) {
	body := ref[1:]
	base := 10
	if len(body) > 0 && (body[0] == 'x' || body[0] == 'X') {
		base = 16
		body = body[1:]
	}
	n, err := strconv.ParseUint(body, base, 32)
	if err != nil {
		return "", s.errf("malformed character reference &%s;", ref)
	}
	r := rune(n)
	if !isLegalCharRef(r) {
		return "", s.errf("character reference &%s; is not a legal XML character", ref)
	}
	return string(r), nil
}

// scanProcInst scans <?target body?>. The XML declaration is reported
// as a ProcInst with target "xml".
func (s *Scanner) scanProcInst() (Token, error) {
	s.advance(2) // <?
	name, err := s.scanName()
	if err != nil {
		return Token{}, err
	}
	s.skipSpace()
	end := indexFrom(s.src, "?>", s.pos)
	if end < 0 {
		return Token{}, s.errf("unterminated processing instruction <?%s", name)
	}
	body := string(s.src[s.pos:end])
	s.advance(end + 2 - s.pos)
	return Token{Kind: KindProcInst, Name: name, Text: body}, nil
}

// scanBang scans constructs that begin with "<!": comments, CDATA
// sections, and directives such as DOCTYPE.
func (s *Scanner) scanBang() (Token, error) {
	rest := s.src[s.pos:]
	switch {
	case hasPrefix(rest, "<!--"):
		return s.scanComment()
	case hasPrefix(rest, "<![CDATA["):
		return s.scanCDATA()
	default:
		return s.scanDirective()
	}
}

// scanComment scans <!-- ... -->.
func (s *Scanner) scanComment() (Token, error) {
	s.advance(4) // <!--
	end := indexFrom(s.src, "--", s.pos)
	if end < 0 {
		return Token{}, s.errf("unterminated comment")
	}
	if end+2 > len(s.src)-1 || s.src[end+2] != '>' {
		return Token{}, s.errf("'--' not allowed inside comment")
	}
	body := string(s.src[s.pos:end])
	s.advance(end + 3 - s.pos)
	return Token{Kind: KindComment, Text: body}, nil
}

// scanCDATA scans <![CDATA[ ... ]]> and reports it as character data.
// CDATA outside the root element is rejected by Next.
func (s *Scanner) scanCDATA() (Token, error) {
	s.advance(9) // <![CDATA[
	end := indexFrom(s.src, "]]>", s.pos)
	if end < 0 {
		return Token{}, s.errf("unterminated CDATA section")
	}
	body := string(s.src[s.pos:end])
	s.advance(end + 3 - s.pos)
	if len(s.open) == 0 {
		return Token{}, s.errf("CDATA section outside root element")
	}
	return Token{Kind: KindCharData, Text: body}, nil
}

// scanDirective scans <! ... > directives (DOCTYPE). Internal subsets
// delimited by [ ] are skipped without interpretation.
func (s *Scanner) scanDirective() (Token, error) {
	start := s.pos + 2
	s.advance(2) // <!
	depth := 0
	for s.pos < len(s.src) {
		c := s.src[s.pos]
		switch c {
		case '[':
			depth++
		case ']':
			depth--
		case '>':
			if depth <= 0 {
				body := string(s.src[start:s.pos])
				s.advance(1)
				return Token{Kind: KindDirective, Text: body}, nil
			}
		case '\n':
			s.line++
		}
		s.pos++
	}
	return Token{}, s.errf("unterminated directive")
}

// scanStartElement scans <name attr="v" ...> or <name/>.
func (s *Scanner) scanStartElement() (Token, error) {
	s.advance(1) // <
	name, err := s.scanName()
	if err != nil {
		return Token{}, err
	}
	if s.sawRoot && len(s.open) == 0 {
		return Token{}, s.errf("multiple root elements: unexpected <%s>", name)
	}
	tok := Token{Kind: KindStartElement, Name: name}
	seen := map[string]bool{}
	for {
		s.skipSpace()
		if s.pos >= len(s.src) {
			return Token{}, s.errf("unterminated start tag <%s>", name)
		}
		c := s.src[s.pos]
		if c == '>' {
			s.advance(1)
			s.open = append(s.open, name)
			s.sawRoot = true
			return tok, nil
		}
		if c == '/' {
			if s.pos+1 >= len(s.src) || s.src[s.pos+1] != '>' {
				return Token{}, s.errf("expected '/>' in tag <%s>", name)
			}
			s.advance(2)
			tok.SelfClosing = true
			s.sawRoot = true
			// Emit the matching end element on the following Next call.
			s.pendingEnd = name
			s.hasPending = true
			return tok, nil
		}
		attr, err := s.scanAttr(name)
		if err != nil {
			return Token{}, err
		}
		if seen[attr.Name] {
			return Token{}, s.errf("duplicate attribute %q in <%s>", attr.Name, name)
		}
		seen[attr.Name] = true
		tok.Attrs = append(tok.Attrs, attr)
	}
}

// scanAttr scans a single name="value" attribute.
func (s *Scanner) scanAttr(elem string) (Attr, error) {
	name, err := s.scanName()
	if err != nil {
		return Attr{}, err
	}
	s.skipSpace()
	if s.pos >= len(s.src) || s.src[s.pos] != '=' {
		return Attr{}, s.errf("attribute %q in <%s> missing '='", name, elem)
	}
	s.advance(1)
	s.skipSpace()
	if s.pos >= len(s.src) || (s.src[s.pos] != '"' && s.src[s.pos] != '\'') {
		return Attr{}, s.errf("attribute %q in <%s> missing quoted value", name, elem)
	}
	quote := s.src[s.pos]
	s.advance(1)
	var b strings.Builder
	start := s.pos
	plain := true
	for {
		if s.pos >= len(s.src) {
			return Attr{}, s.errf("unterminated value for attribute %q", name)
		}
		c := s.src[s.pos]
		if c == quote {
			break
		}
		switch c {
		case '<':
			return Attr{}, s.errf("'<' not allowed in attribute value of %q", name)
		case '&':
			if plain {
				b.Write(s.src[start:s.pos])
				plain = false
			}
			r, err := s.scanReference()
			if err != nil {
				return Attr{}, err
			}
			b.WriteString(r)
			continue
		case '\n':
			s.line++
		}
		if !plain {
			b.WriteByte(c)
		}
		s.pos++
	}
	var val string
	if plain {
		val = string(s.src[start:s.pos])
	} else {
		val = b.String()
	}
	s.advance(1) // closing quote
	return Attr{Name: name, Value: val}, nil
}

// scanEndElement scans </name>.
func (s *Scanner) scanEndElement() (Token, error) {
	s.advance(2) // </
	name, err := s.scanName()
	if err != nil {
		return Token{}, err
	}
	s.skipSpace()
	if s.pos >= len(s.src) || s.src[s.pos] != '>' {
		return Token{}, s.errf("malformed end tag </%s", name)
	}
	s.advance(1)
	if len(s.open) == 0 {
		return Token{}, s.errf("unexpected end tag </%s>", name)
	}
	top := s.open[len(s.open)-1]
	if top != name {
		return Token{}, s.errf("end tag </%s> does not match open element <%s>", name, top)
	}
	s.open = s.open[:len(s.open)-1]
	return Token{Kind: KindEndElement, Name: name}, nil
}

// scanName scans an XML name (possibly with a namespace prefix).
func (s *Scanner) scanName() (string, error) {
	start := s.pos
	if s.pos >= len(s.src) {
		return "", s.errf("expected name")
	}
	r, size := utf8.DecodeRune(s.src[s.pos:])
	if !isNameStartRune(r) {
		return "", s.errf("invalid name start character %q", r)
	}
	s.pos += size
	for s.pos < len(s.src) {
		r, size = utf8.DecodeRune(s.src[s.pos:])
		if !isNameRune(r) {
			break
		}
		s.pos += size
	}
	return string(s.src[start:s.pos]), nil
}
