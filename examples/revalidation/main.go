// Revalidation and invalidation: the consistency ladder end to end.
//
// Rung one is the HTTP 1.1 mechanism the paper points to (Section
// 3.2): the server stamps responses with Last-Modified and
// Cache-Control; the cache keeps expired entries as stale and sends
// conditional requests (If-Modified-Since); the server answers 304 Not
// Modified and the cache refreshes the entry without reprocessing the
// response. This is the pull-based fallback every operation gets.
//
// Rung two is dependency-aware invalidation (package invalidate):
// operations with declared read/write sets get push-based epoch
// invalidation — a write-through call invalidates every dependent
// entry at once, and the cache refuses to revalidate such entries even
// when the server (whose validator here deliberately lies) would
// happily answer 304.
//
//	go run ./examples/revalidation
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/googleapi"
	"repro/internal/invalidate"
	"repro/internal/rep"
	"repro/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dispatcher, codec, err := googleapi.NewDispatcher()
	if err != nil {
		return err
	}
	// The server's resource was last modified a day ago; responses are
	// declared fresh for one minute.
	dispatcher.SetValidatorPolicy(time.Now().Add(-24*time.Hour), time.Minute)

	// A controllable clock stands in for waiting out real TTLs.
	now := time.Now()
	clock := func() time.Time { return now }

	// The invalidation graph covers only the item operations; the
	// paper's search operations declare nothing and stay on the 304
	// fallback below.
	cache := core.MustNew(core.Config{
		KeyGen:         rep.NewStringKey(),
		Store:          rep.NewAutoStore(codec.Registry(), codec),
		Revalidate:     true, // keep stale entries, send conditional requests
		HonorServerTTL: true, // the server's max-age drives expiry
		Clock:          clock,
		Invalidator:    invalidate.New(googleapi.ItemGraph(), nil),
	})

	call := client.NewCall(codec, &transport.InProcess{Handler: dispatcher},
		googleapi.Endpoint, googleapi.Namespace, googleapi.OpGoogleSearch,
		"urn:GoogleSearchAction",
		client.Options{RecordEvents: true, Handlers: []client.Handler{cache}})

	params := googleapi.SearchParams("demo", "consistency", 0, 10, false, "", false, "")
	describe := func(step string, ictx *client.Context, took time.Duration) {
		fmt.Printf("%-28s hit=%-5v 304=%-5v %8v\n", step, ictx.CacheHit, ictx.NotModified, took.Round(time.Microsecond))
	}

	invoke := func(step string) (*client.Context, error) {
		start := time.Now()
		ictx, err := call.InvokeContext(context.Background(), params...)
		if err != nil {
			return nil, err
		}
		describe(step, ictx, time.Since(start))
		return ictx, nil
	}

	if _, err := invoke("1. cold miss (full fetch)"); err != nil {
		return err
	}
	if _, err := invoke("2. fresh hit (no traffic)"); err != nil {
		return err
	}

	now = now.Add(2 * time.Minute) // entry expires per server max-age
	if _, err := invoke("3. stale -> conditional, 304"); err != nil {
		return err
	}
	if _, err := invoke("4. refreshed hit"); err != nil {
		return err
	}

	// The resource changes on the server; the next revalidation gets a
	// full response instead of 304.
	dispatcher.SetValidatorPolicy(time.Now().Add(time.Hour), time.Minute)
	now = now.Add(2 * time.Minute)
	if _, err := invoke("5. stale -> modified, refetch"); err != nil {
		return err
	}

	// Act two: the push-based rung. The server's validator now lies —
	// it stamps everything unmodified-for-a-day, so pure 304
	// revalidation would never see the item change. The declared write
	// set on doPutItem makes the change visible anyway.
	dispatcher.SetValidatorPolicy(time.Now().Add(-24*time.Hour), time.Minute)
	fmt.Println()

	itemCall := func(op string) *client.Call {
		return client.NewCall(codec, &transport.InProcess{Handler: dispatcher},
			googleapi.Endpoint, googleapi.Namespace, op, "urn:GoogleSearchAction",
			client.Options{RecordEvents: true, Handlers: []client.Handler{cache}})
	}
	getItem, putItem := itemCall(googleapi.OpGetItem), itemCall(googleapi.OpPutItem)

	item := func(step, key string) error {
		start := time.Now()
		ictx, err := getItem.InvokeContext(context.Background(), googleapi.GetItemParams(key)...)
		if err != nil {
			return err
		}
		fmt.Printf("%-28s hit=%-5v 304=%-5v value=%-4q %8v\n",
			step, ictx.CacheHit, ictx.NotModified, ictx.Result, time.Since(start).Round(time.Microsecond))
		return nil
	}

	if _, err := putItem.Invoke(context.Background(), googleapi.PutItemParams("answer", "42")...); err != nil {
		return err
	}
	if err := item("6. cold miss (fill)", "answer"); err != nil {
		return err
	}
	if err := item("7. fresh hit", "answer"); err != nil {
		return err
	}
	// Write through the cache: doPutItem's declared write set bumps the
	// epochs for item:answer and the listing keyspace before the call
	// returns.
	if _, err := putItem.Invoke(context.Background(), googleapi.PutItemParams("answer", "43")...); err != nil {
		return err
	}
	if err := item("8. invalidated -> refetch", "answer"); err != nil {
		return err
	}

	s := cache.Stats()
	fmt.Printf("\ncache: %d hits, %d misses, %d revalidations, %d invalidations, %d stores\n",
		s.Hits, s.Misses, s.Revalidations, s.Invalidations, s.Stores)
	return nil
}
