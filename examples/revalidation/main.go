// Revalidation: the HTTP 1.1 consistency mechanism the paper points to
// (Section 3.2) working end to end. The server stamps responses with
// Last-Modified and Cache-Control; the cache keeps expired entries as
// stale and sends conditional requests (If-Modified-Since); the server
// answers 304 Not Modified and the cache refreshes the entry without
// reprocessing the response.
//
//	go run ./examples/revalidation
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/googleapi"
	"repro/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dispatcher, codec, err := googleapi.NewDispatcher()
	if err != nil {
		return err
	}
	// The server's resource was last modified a day ago; responses are
	// declared fresh for one minute.
	dispatcher.SetValidatorPolicy(time.Now().Add(-24*time.Hour), time.Minute)

	// A controllable clock stands in for waiting out real TTLs.
	now := time.Now()
	clock := func() time.Time { return now }

	cache := core.MustNew(core.Config{
		KeyGen:         core.NewStringKey(),
		Store:          core.NewAutoStore(codec.Registry(), codec),
		Revalidate:     true, // keep stale entries, send conditional requests
		HonorServerTTL: true, // the server's max-age drives expiry
		Clock:          clock,
	})

	call := client.NewCall(codec, &transport.InProcess{Handler: dispatcher},
		googleapi.Endpoint, googleapi.Namespace, googleapi.OpGoogleSearch,
		"urn:GoogleSearchAction",
		client.Options{RecordEvents: true, Handlers: []client.Handler{cache}})

	params := googleapi.SearchParams("demo", "consistency", 0, 10, false, "", false, "")
	describe := func(step string, ictx *client.Context, took time.Duration) {
		fmt.Printf("%-28s hit=%-5v 304=%-5v %8v\n", step, ictx.CacheHit, ictx.NotModified, took.Round(time.Microsecond))
	}

	invoke := func(step string) (*client.Context, error) {
		start := time.Now()
		ictx, err := call.InvokeContext(context.Background(), params...)
		if err != nil {
			return nil, err
		}
		describe(step, ictx, time.Since(start))
		return ictx, nil
	}

	if _, err := invoke("1. cold miss (full fetch)"); err != nil {
		return err
	}
	if _, err := invoke("2. fresh hit (no traffic)"); err != nil {
		return err
	}

	now = now.Add(2 * time.Minute) // entry expires per server max-age
	if _, err := invoke("3. stale -> conditional, 304"); err != nil {
		return err
	}
	if _, err := invoke("4. refreshed hit"); err != nil {
		return err
	}

	// The resource changes on the server; the next revalidation gets a
	// full response instead of 304.
	dispatcher.SetValidatorPolicy(time.Now().Add(time.Hour), time.Minute)
	now = now.Add(2 * time.Minute)
	if _, err := invoke("5. stale -> modified, refetch"); err != nil {
		return err
	}

	s := cache.Stats()
	fmt.Printf("\ncache: %d hits, %d misses, %d revalidations, %d stores\n",
		s.Hits, s.Misses, s.Revalidations, s.Stores)
	return nil
}
