// Representations: the same response cached under every value
// representation of the paper's Table 3, showing (a) the cost of a
// cache hit under each, (b) the side-effect behaviour — which
// representations isolate the cache from client mutations — (c) what
// the Section 6 run-time classifier picks for each result type, and
// (d) the adaptive selector's live decision table: the per-candidate
// Store/Load costs it measured (the run-time analogue of the paper's
// Table 7) and the representation it chose per operation.
//
//	go run ./examples/representations
package main

import (
	"fmt"
	"io"
	"log"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/googleapi"
	"repro/internal/rep"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	env, err := bench.NewEnv()
	if err != nil {
		return err
	}
	search, _ := env.Fixture(googleapi.OpGoogleSearch)

	stores := []rep.ValueStore{
		rep.NewXMLMessageStore(env.Codec),
		rep.NewSAXEventsStore(env.Codec),
		rep.NewBinserStore(env.Reg),
		rep.NewReflectCopyStore(env.Reg),
		rep.NewCloneCopyStore(),
		rep.NewRefStore(env.Reg, true), // read-only asserted
	}

	fmt.Println("Per-hit cost and aliasing behaviour for doGoogleSearch:")
	fmt.Printf("%-22s %12s  %s\n", "representation", "hit cost", "client mutation visible in next hit?")
	for _, store := range stores {
		payload, _, err := store.Store(search.Ctx)
		if err != nil {
			return fmt.Errorf("%s: %w", store.Name(), err)
		}

		// Time one hundred hits.
		const n = 100
		start := time.Now()
		var last any
		for i := 0; i < n; i++ {
			last, err = store.Load(payload)
			if err != nil {
				return fmt.Errorf("%s: %w", store.Name(), err)
			}
		}
		perHit := time.Since(start) / n

		// Mutate the object a hit returned, then take another hit: does
		// the mutation leak into the cache (call-by-copy violation)?
		last.(*googleapi.GoogleSearchResult).SearchQuery = "MUTATED BY CLIENT"
		again, err := store.Load(payload)
		if err != nil {
			return err
		}
		leaked := again.(*googleapi.GoogleSearchResult).SearchQuery == "MUTATED BY CLIENT"

		note := "no (safe)"
		if leaked {
			note = "YES — shared reference; requires read-only assertion"
		}
		fmt.Printf("%-22s %12v  %s\n", store.Name(), perHit, note)
	}

	// The streaming representations (DESIGN.md §5i): consumers that
	// accept serialized bytes instead of objects skip materialization
	// entirely. Raw replay stores the exact response; the XML template
	// shares one skeleton per response shape and splices only the
	// character data per entry.
	fmt.Println("\nStreaming representations (stream-accepting consumers, DESIGN.md §5i):")
	fmt.Printf("%-22s %12s  %s\n", "representation", "replay cost", "notes")
	tmplStore := rep.NewTemplateStore()
	for _, store := range []rep.ValueStore{rep.NewRawStreamStore(), tmplStore} {
		payload, _, err := store.Store(search.Ctx)
		if err != nil {
			return fmt.Errorf("%s: %w", store.Name(), err)
		}
		const n = 100
		start := time.Now()
		for i := 0; i < n; i++ {
			loaded, err := store.Load(payload)
			if err != nil {
				return fmt.Errorf("%s: %w", store.Name(), err)
			}
			if _, err := loaded.(rep.Streamed).WriteTo(io.Discard); err != nil {
				return fmt.Errorf("%s: %w", store.Name(), err)
			}
		}
		perHit := time.Since(start) / n
		note := "exact bytes, zero-copy replay"
		if ts, ok := store.(*rep.TemplateStore); ok {
			s := ts.Stats()
			note = fmt.Sprintf("%d skeleton(s) of %d bytes shared; %d build(s), %d splice(s)",
				s.Skeletons, s.SkeletonBytes, s.Builds, s.Splices)
		}
		fmt.Printf("%-22s %12v  %s\n", store.Name(), perHit, note)
	}

	// The Section 6 classifier at work on the three result classes.
	reps := rep.NewRegistry(env.Reg, env.Codec)
	auto := rep.NewAutoStore(env.Reg, env.Codec)
	fmt.Println("\nAutoStore (Section 6 optimal configuration) decisions:")
	for i := range env.Ops {
		op := &env.Ops[i]
		fmt.Printf("  %-22s %-24T -> %s\n", op.Op, op.Ctx.Result, auto.Classify(op.Ctx))
	}
	// The same results for a stream-accepting consumer: the classifier
	// pre-empts every object representation with raw replay.
	streamCtx := *search.Ctx
	streamCtx.AcceptStream = true
	fmt.Printf("  %-22s %-24s -> %s\n", googleapi.OpGoogleSearch, "(AcceptStream)", auto.Classify(&streamCtx))

	// The adaptive selector measuring the same fixtures: feed it enough
	// fills and hits per operation to converge, then print the costs it
	// observed and what it chose.
	sel, err := rep.NewAdaptiveSelector(rep.SelectorConfig{Registry: reps})
	if err != nil {
		return err
	}
	const fills = 33 // past MinSamples probes at the default ProbeEvery
	for i := range env.Ops {
		op := &env.Ops[i]
		for j := 0; j < fills; j++ {
			payload, _, err := sel.Store(op.Ctx)
			if err != nil {
				return fmt.Errorf("adaptive %s: %w", op.Op, err)
			}
			if _, err := sel.Load(payload); err != nil {
				return fmt.Errorf("adaptive %s: %w", op.Op, err)
			}
		}
	}

	fmt.Println("\nAdaptive selector decision table (measured; compare Table 7):")
	for _, d := range sel.DecisionTable() {
		fmt.Printf("  %s %s -> %s (%s, %d fills)\n", d.Operation, d.ResultType, d.Chosen, d.Source, d.Stores)
		fmt.Printf("    %-22s %9s %12s %12s %10s %12s\n",
			"candidate", "samples", "store", "load", "bytes", "score")
		for _, c := range d.Costs {
			fmt.Printf("    %-22s %9d %12v %12v %10.0f %12.0f\n",
				c.Rep, c.Samples,
				time.Duration(c.StoreNS).Round(time.Microsecond),
				time.Duration(c.LoadNS).Round(time.Microsecond),
				c.Bytes, c.Score)
		}
	}
	fmt.Println(strings.Repeat("-", 72))
	fmt.Println("score = load + bytes/budget x store: expected cost of serving a hit")
	return nil
}
