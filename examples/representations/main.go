// Representations: the same response cached under every value
// representation of the paper's Table 3, showing (a) the cost of a
// cache hit under each, (b) the side-effect behaviour — which
// representations isolate the cache from client mutations — and (c)
// what the Section 6 run-time classifier picks for each result type.
//
//	go run ./examples/representations
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/googleapi"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	env, err := bench.NewEnv()
	if err != nil {
		return err
	}
	search, _ := env.Fixture(googleapi.OpGoogleSearch)

	stores := []core.ValueStore{
		core.NewXMLMessageStore(env.Codec),
		core.NewSAXEventsStore(env.Codec),
		core.NewBinserStore(env.Reg),
		core.NewReflectCopyStore(env.Reg),
		core.NewCloneCopyStore(),
		core.NewRefStore(env.Reg, true), // read-only asserted
	}

	fmt.Println("Per-hit cost and aliasing behaviour for doGoogleSearch:")
	fmt.Printf("%-22s %12s  %s\n", "representation", "hit cost", "client mutation visible in next hit?")
	for _, store := range stores {
		payload, _, err := store.Store(search.Ctx)
		if err != nil {
			return fmt.Errorf("%s: %w", store.Name(), err)
		}

		// Time one hundred hits.
		const n = 100
		start := time.Now()
		var last any
		for i := 0; i < n; i++ {
			last, err = store.Load(payload)
			if err != nil {
				return fmt.Errorf("%s: %w", store.Name(), err)
			}
		}
		perHit := time.Since(start) / n

		// Mutate the object a hit returned, then take another hit: does
		// the mutation leak into the cache (call-by-copy violation)?
		last.(*googleapi.GoogleSearchResult).SearchQuery = "MUTATED BY CLIENT"
		again, err := store.Load(payload)
		if err != nil {
			return err
		}
		leaked := again.(*googleapi.GoogleSearchResult).SearchQuery == "MUTATED BY CLIENT"

		note := "no (safe)"
		if leaked {
			note = "YES — shared reference; requires read-only assertion"
		}
		fmt.Printf("%-22s %12v  %s\n", store.Name(), perHit, note)
	}

	// The Section 6 classifier at work on the three result classes.
	auto := core.NewAutoStore(env.Reg, env.Codec)
	fmt.Println("\nAutoStore (Section 6 optimal configuration) decisions:")
	for i := range env.Ops {
		op := &env.Ops[i]
		fmt.Printf("  %-22s %-24T -> %s\n", op.Op, op.Ctx.Result, auto.Classify(op.Ctx))
	}
	return nil
}
