// Quickstart: a caching Web services client in ~60 lines.
//
// It wires the pieces the paper's Figure 1 shows: a SOAP client call
// over an in-process transport to the dummy Google service, with the
// response cache installed as a client-middleware handler. The second
// identical request is served from the cache without touching the
// server.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/googleapi"
	"repro/internal/rep"
	"repro/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The back end: a dummy Google Web services dispatcher (decodes
	// requests, generates deterministic results, encodes responses).
	dispatcher, codec, err := googleapi.NewDispatcher()
	if err != nil {
		return err
	}

	// The paper's contribution: a response cache selecting the optimal
	// value representation per result type at run time (Section 6).
	cache := core.MustNew(core.Config{
		KeyGen:     rep.NewStringKey(), // toString-analog keys (Table 6 winner)
		Store:      rep.NewAutoStore(codec.Registry(), codec),
		DefaultTTL: time.Hour, // "one hour is short enough" for these ops
	})

	// A client call with the cache installed in its handler chain.
	call := client.NewCall(codec, &transport.InProcess{Handler: dispatcher},
		googleapi.Endpoint, googleapi.Namespace,
		googleapi.OpGoogleSearch, "urn:GoogleSearchAction",
		client.Options{RecordEvents: true, Handlers: []client.Handler{cache}})

	params := googleapi.SearchParams("demo-key", "response caching", 0, 10, false, "", false, "")

	for i := 1; i <= 3; i++ {
		start := time.Now()
		ictx, err := call.InvokeContext(context.Background(), params...)
		if err != nil {
			return err
		}
		result := ictx.Result.(*googleapi.GoogleSearchResult)
		fmt.Printf("call %d: hit=%-5v %6v  %d results for %q\n",
			i, ictx.CacheHit, time.Since(start).Round(time.Microsecond),
			len(result.ResultElements), result.SearchQuery)
	}

	stats := cache.Stats()
	fmt.Printf("\ncache: %d hits, %d misses, %d stores, %d bytes\n",
		stats.Hits, stats.Misses, stats.Stores, stats.Bytes)
	return nil
}
