// Portal: the paper's motivating scenario (Sections 1 and 5.2). A
// portal site fans out to three back-end Web services — search,
// spelling suggestions, and cached pages — through caching client
// middleware, then a small load run demonstrates the cache's effect on
// page latency.
//
// The whole stack shares one obs.Registry, so the load run ends with a
// stage-level latency summary and, when serving, the portal exposes the
// live snapshot at /debug/wscache:
//
//	go run ./examples/portal              # self-driving demo
//	go run ./examples/portal -addr :9090  # also serve the portal page
//	curl http://localhost:9090/debug/wscache
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/googleapi"
	"repro/internal/loadgen"
	"repro/internal/obs"
	"repro/internal/portal"
	"repro/internal/rep"
	"repro/internal/soap"
	"repro/internal/transport"
)

func main() {
	addr := flag.String("addr", "", "also serve the portal over HTTP at this address")
	flag.Parse()
	if err := run(context.Background(), *addr); err != nil {
		log.Fatal(err)
	}
}

func run(ctx context.Context, addr string) error {
	dispatcher, codec, err := googleapi.NewDispatcher()
	if err != nil {
		return err
	}
	// One registry for every layer of the stack: cache core, client
	// pivot, transport, and portal all record into it, so one snapshot
	// tells the whole story.
	reg := obs.NewRegistry()
	cache := core.MustNew(core.Config{
		KeyGen:     rep.NewStringKey(),
		Store:      rep.NewAutoStore(codec.Registry(), codec),
		DefaultTTL: time.Hour,
		MaxEntries: 10_000,
		Obs:        reg,
	})
	tr := &transport.InProcess{Handler: dispatcher, Obs: reg}
	opts := client.Options{RecordEvents: true, Handlers: []client.Handler{cache}, Obs: reg}
	newCall := func(op string) *client.Call {
		return client.NewCall(codec, tr, googleapi.Endpoint, googleapi.Namespace,
			op, "urn:GoogleSearchAction", opts)
	}

	site := portal.New(
		portal.Backend{
			Name: "Web Search",
			Call: newCall(googleapi.OpGoogleSearch),
			Params: func(q string) []soap.Param {
				return googleapi.SearchParams("key", q, 0, 10, false, "", false, "")
			},
		},
		portal.Backend{
			Name: "Did you mean",
			Call: newCall(googleapi.OpSpellingSuggestion),
			Params: func(q string) []soap.Param {
				return googleapi.SpellingParams("key", q)
			},
		},
		portal.Backend{
			Name: "Cached copy",
			Call: newCall(googleapi.OpGetCachedPage),
			Params: func(q string) []soap.Param {
				return googleapi.CachedPageParams("key", "http://portal.example/"+q)
			},
		},
	)
	site.Instrument(reg, nil)

	// Demonstration load: 60% of page views repeat popular queries.
	hot := []string{"web services", "response caching", "soap performance"}
	for _, q := range hot {
		if _, err := site.RenderContext(ctx, q); err != nil {
			return err
		}
	}
	res, err := loadgen.RunContext(ctx, loadgen.Config{
		Concurrency: 4,
		Requests:    400,
		HitRatio:    0.6,
		HotQueries:  hot,
		MissQuery:   func(i int) string { return fmt.Sprintf("unique query %d", i) },
		Do: func(q string) error {
			_, err := site.RenderContext(ctx, q)
			return err
		},
	})
	if err != nil {
		return err
	}
	fmt.Println("portal load:", res)
	stats := cache.Stats()
	fmt.Printf("cache: %d hits / %d misses (ratio %.0f%%), %d entries, %d bytes\n",
		stats.Hits, stats.Misses, 100*stats.HitRatio(), stats.Entries, stats.Bytes)
	printStages(reg.Snapshot())

	if addr != "" {
		mux := http.NewServeMux()
		mux.Handle("/", site)
		mux.Handle(obs.DebugPath, obs.Handler(reg))
		fmt.Printf("serving portal at http://%s/?q=your+query\n", addr)
		fmt.Printf("observability at http://%s%s\n", addr, obs.DebugPath)
		srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		return srv.ListenAndServe()
	}
	return nil
}

// printStages summarizes the per-stage latency series of a snapshot.
func printStages(snap obs.Snapshot) {
	fmt.Println("stage latencies (p50/p99):")
	for _, st := range snap.Stages {
		label := string(st.Stage)
		if st.Representation != "" {
			label += " [" + st.Representation + "]"
		}
		fmt.Printf("  %-40s n=%-6d p50=%-10s p99=%s\n", label, st.Latency.Count,
			time.Duration(st.Latency.P50NS), time.Duration(st.Latency.P99NS))
	}
}
