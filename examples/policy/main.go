// Policy: cache-policy configuration in the style the paper proposes
// for Amazon Web services (Table 1 and Section 3.2): twenty search
// operations cacheable with a TTL, six shopping-cart operations
// uncacheable, unknown operations uncacheable by default — all
// configured by the client-side administrator, with no change to the
// application or the wire protocol.
//
//	go run ./examples/policy
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"repro/internal/amazonapi"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/rep"
	"repro/internal/server"
	"repro/internal/soap"
	"repro/internal/transport"
	"repro/internal/typemap"
)

// offer is a toy Amazon-style search result row.
type offer struct {
	Asin  string
	Title string
	Price float64
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	reg := typemap.NewRegistry()
	if err := reg.Register(typemap.QName{Space: amazonapi.Namespace, Local: "Offer"}, offer{}); err != nil {
		return err
	}
	codec := soap.NewCodec(reg)

	// A toy Amazon-ish back end: searches are pure, the cart mutates.
	cart := 0
	disp := server.NewDispatcher(codec, amazonapi.Namespace)
	disp.Register("KeywordSearch", func(params []soap.Param) (any, error) {
		kw, _ := params[0].Value.(string)
		return &offer{Asin: "B0000" + kw, Title: "Results for " + kw, Price: 9.99}, nil
	})
	disp.Register("AddShoppingCartItems", func([]soap.Param) (any, error) {
		cart++
		return cart, nil
	})
	disp.Register("GetShoppingCart", func([]soap.Param) (any, error) {
		return cart, nil
	})

	// The paper's suggested policy, TTL one hour.
	policy := amazonapi.DefaultPolicy(time.Hour)
	fmt.Printf("policy: %d cacheable ops, %d uncacheable ops, default uncacheable\n",
		len(policy.CacheableOps()), len(policy.UncacheableOps()))

	cache := core.MustNew(core.Config{
		KeyGen: rep.NewStringKey(),
		Store:  rep.NewAutoStore(reg, codec),
		Policy: policy,
	})
	tr := &transport.InProcess{Handler: disp}
	opts := client.Options{RecordEvents: true, Handlers: []client.Handler{cache}}
	call := func(op string) *client.Call {
		return client.NewCall(codec, tr, "http://amazon.example/soap", amazonapi.Namespace, op, "", opts)
	}

	ctx := context.Background()

	// Search twice: second time is a hit.
	for i := 0; i < 2; i++ {
		ictx, err := call("KeywordSearch").InvokeContext(ctx, soap.Param{Name: "keyword", Value: "go"})
		if err != nil {
			return err
		}
		fmt.Printf("KeywordSearch(go): hit=%v  %+v\n", ictx.CacheHit, ictx.Result)
	}

	// Cart operations always reach the server: caching an update (or a
	// read of mutable cart state) would return stale or wrong results.
	for i := 0; i < 2; i++ {
		if _, err := call("AddShoppingCartItems").Invoke(ctx, soap.Param{Name: "asin", Value: "B00001"}); err != nil {
			return err
		}
	}
	got, err := call("GetShoppingCart").Invoke(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("GetShoppingCart after 2 adds: %v (never cached, always fresh)\n", got)
	if got != 2 {
		return errors.New("cart state wrong — an update was served from cache")
	}

	// Unknown operation: the explicit default refuses to cache it.
	disp.Register("NewExperimentalSearch", func([]soap.Param) (any, error) { return "fresh", nil })
	for i := 0; i < 2; i++ {
		ictx, err := call("NewExperimentalSearch").InvokeContext(ctx)
		if err != nil {
			return err
		}
		if ictx.CacheHit {
			return errors.New("unknown operation was cached against the default policy")
		}
	}
	fmt.Println("NewExperimentalSearch: bypassed the cache both times (fail-safe default)")

	s := cache.Stats()
	fmt.Printf("cache stats: hits=%d misses=%d stores=%d bypass=%d\n", s.Hits, s.Misses, s.Stores, s.Bypass)
	return nil
}
