// Cluster: the shared L2 tier in one process-shaped diorama.
//
// It boots a wscached-style daemon on loopback TCP and two independent
// client stacks ("process A" and "process B"), each with its own L1
// cache and invalidator, both pointed at the daemon (DESIGN.md §5h).
// The walkthrough shows the two claims the tier exists for:
//
//  1. sharing — a response cached by A is served to B from the daemon
//     without touching the origin, even though B's L1 has never seen
//     it;
//
//  2. coherence — a write committed by A bumps the shared epoch, so
//     B's L1 copy is refused as stale on B's next read after daemon
//     contact.
//
// Run it:
//
//	go run ./examples/cluster
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/googleapi"
	"repro/internal/invalidate"
	"repro/internal/rep"
	"repro/internal/soap"
	"repro/internal/tier"
	"repro/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// process is one simulated client process: its own L1 and invalidator,
// sharing only the origin and the daemon with its peers.
type process struct {
	cache *core.Cache
	get   *client.Call
	put   *client.Call
}

func newProcess(tr transport.Transport, codec *soap.Codec, daemonAddr string) (*process, error) {
	inv := invalidate.New(googleapi.ItemGraph(), nil)
	remote, err := cluster.New(cluster.Config{
		Addrs:       []string{daemonAddr},
		Inv:         inv,
		BaseContext: context.Background(),
	})
	if err != nil {
		return nil, err
	}
	cache := core.MustNew(core.Config{
		KeyGen:      rep.NewStringKey(),
		Rep:         rep.NewRegistry(codec.Registry(), codec),
		DefaultTTL:  time.Hour,
		Invalidator: inv,
		Tiers:       []tier.Tier{remote},
		Policy: core.Policy{
			DefaultExplicit: true,
			Operations: map[string]core.OperationPolicy{
				googleapi.OpGetItem: {Cacheable: true},
			},
		},
	})
	mk := func(op string) *client.Call {
		return client.NewCall(codec, tr, googleapi.Endpoint, googleapi.Namespace,
			op, "urn:GoogleSearchAction",
			client.Options{RecordEvents: true, Handlers: []client.Handler{cache}})
	}
	return &process{cache: cache, get: mk(googleapi.OpGetItem), put: mk(googleapi.OpPutItem)}, nil
}

func (p *process) read(name, key string) error {
	ictx, err := p.get.InvokeContext(context.Background(), googleapi.GetItemParams(key)...)
	if err != nil {
		return err
	}
	fmt.Printf("%s reads %q  -> %q  (hit=%v, tier hits so far: %d)\n",
		name, key, ictx.Result, ictx.CacheHit, p.cache.Stats().TierHits)
	return nil
}

func run() error {
	// The origin: the dummy Google dispatcher with its mutable item
	// store, shared by both processes over an in-process transport.
	dispatcher, codec, err := googleapi.NewDispatcher()
	if err != nil {
		return err
	}
	tr := &transport.InProcess{Handler: dispatcher}

	// The daemon: a byte-oriented core.Cache behind the cluster wire
	// protocol, exactly what cmd/wscached runs.
	dinv := invalidate.New(nil, nil)
	shared := core.MustNew(core.Config{
		KeyGen:      rep.NewStringKey(),
		Store:       rep.NewCloneCopyStore(),
		DefaultTTL:  time.Hour,
		Invalidator: dinv,
	})
	srv, err := cluster.NewServer(cluster.ServerConfig{Tier: shared, Inv: dinv})
	if err != nil {
		return err
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go func() { _ = srv.Serve(context.Background(), lis) }()
	defer srv.Close()
	fmt.Printf("daemon listening on %s\n\n", lis.Addr())

	a, err := newProcess(tr, codec, lis.Addr().String())
	if err != nil {
		return err
	}
	b, err := newProcess(tr, codec, lis.Addr().String())
	if err != nil {
		return err
	}

	// A writes and reads: the read misses everywhere, hits the origin,
	// and the response is pushed down into the shared daemon.
	if _, err := a.put.InvokeContext(context.Background(), googleapi.PutItemParams("greeting", "hello from A")...); err != nil {
		return err
	}
	if err := a.read("A", "greeting"); err != nil {
		return err
	}

	// B has never seen the key, yet its first read is a cache hit:
	// the daemon answers, the origin is not consulted.
	if err := b.read("B", "greeting"); err != nil {
		return err
	}
	if err := b.read("B", "greeting"); err != nil { // now L1-resident in B
		return err
	}

	// A overwrites the item. The write bumps the item's keyspace epoch
	// in A, and A pushes the bump to the daemon.
	if _, err := a.put.InvokeContext(context.Background(), googleapi.PutItemParams("greeting", "rewritten by A")...); err != nil {
		return err
	}
	fmt.Println("\nA rewrites \"greeting\"")

	// B touches the daemon on a cold key, which syncs the shared epoch
	// table; B's L1 copy of "greeting" is now provably stale and the
	// next read refetches the new value.
	if err := b.read("B", "unrelated"); err != nil {
		return err
	}
	if err := b.read("B", "greeting"); err != nil {
		return err
	}
	return nil
}
