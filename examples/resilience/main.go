// Resilience: the degraded-mode machinery working end to end against a
// fault-injected backend. A flaky transport is absorbed by retries; a
// dead backend trips the per-endpoint circuit breaker and the cache
// degrades to serving stale entries within the StaleIfError window; a
// half-open probe closes the breaker once the backend recovers; and a
// thundering herd of concurrent misses is coalesced into one backend
// call.
//
//	go run ./examples/resilience
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/faultify"
	"repro/internal/googleapi"
	"repro/internal/rep"
	"repro/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dispatcher, codec, err := googleapi.NewDispatcher()
	if err != nil {
		return err
	}

	// The backend sits behind a fault injector: a little latency on
	// every call (so concurrent misses overlap) and a script we flip
	// between healthy, flaky, and dead.
	ft := faultify.New(&transport.InProcess{Handler: dispatcher}, faultify.Config{
		Latency: 20 * time.Millisecond,
		Seed:    42,
	})

	// A controllable clock stands in for waiting out TTLs and breaker
	// open intervals.
	var mu sync.Mutex
	now := time.Now()
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	cache := core.MustNew(core.Config{
		KeyGen:       rep.NewStringKey(),
		Store:        rep.NewAutoStore(codec.Registry(), codec),
		DefaultTTL:   time.Minute,
		StaleIfError: time.Hour, // degraded window: expired entries still usable
		Coalesce:     true,      // concurrent misses share one backend call
		Clock:        clock,
	})
	breaker := client.NewBreaker(client.BreakerConfig{
		Window:           5,
		MinSamples:       3,
		FailureThreshold: 0.5,
		OpenFor:          10 * time.Second,
		Clock:            clock,
	})

	call := client.NewCall(codec, ft,
		googleapi.Endpoint, googleapi.Namespace, googleapi.OpGoogleSearch,
		"urn:GoogleSearchAction",
		client.Options{
			RecordEvents: true,
			Handlers:     []client.Handler{cache},
			Breaker:      breaker,
			Retry: &transport.RetryPolicy{
				MaxAttempts: 2,
				BaseDelay:   time.Millisecond,
			},
		})

	invoke := func(step, query string) {
		params := googleapi.SearchParams("demo", query, 0, 10, false, "", false, "")
		ictx, err := call.InvokeContext(context.Background(), params...)
		switch {
		case err != nil:
			fmt.Printf("%-34s error: %v\n", step, short(err))
		default:
			fmt.Printf("%-34s hit=%-5v stale=%-5v breaker=%v\n",
				step, ictx.CacheHit, ictx.ServedStale, breaker.State(googleapi.Endpoint))
		}
	}

	fmt.Println("--- act 1: retries absorb a flaky backend ---")
	ft.SetScript([]faultify.Outcome{faultify.Fail}) // first attempt fails, retry passes
	invoke("1. flaky miss (1 fail, retried)", "resilient")
	s := ft.Stats()
	fmt.Printf("   transport: %d sends, %d injected failures\n", s.Calls, s.Failures)

	fmt.Println("\n--- act 2: dead backend, breaker trips, cache degrades ---")
	advance(2 * time.Minute) // the cached entry expires (TTL 1m)
	ft.SetScript(faultify.FailN(1000))
	for i := 3; i > 0; i-- {
		invoke(fmt.Sprintf("2. dead backend -> stale (%d)", 4-i), "resilient")
	}
	before := ft.Stats().Calls
	invoke("3. breaker open, no transport", "resilient")
	fmt.Printf("   transport sends while open: %d (breaker short-circuits)\n", ft.Stats().Calls-before)

	fmt.Println("\n--- act 3: recovery through a half-open probe ---")
	ft.SetScript(nil) // the backend comes back
	advance(11 * time.Second)
	invoke("4. half-open probe succeeds", "resilient")
	invoke("5. fresh hit after recovery", "resilient")

	fmt.Println("\n--- act 4: coalescing a thundering herd ---")
	baseCalls := ft.Stats().Calls
	var wg sync.WaitGroup
	params := googleapi.SearchParams("demo", "thundering herd", 0, 10, false, "", false, "")
	for i := 0; i < 25; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := call.Invoke(context.Background(), params...); err != nil {
				fmt.Println("   herd error:", err)
			}
		}()
	}
	wg.Wait()
	cs := cache.Stats()
	fmt.Printf("6. 25 concurrent misses -> %d backend call(s), %d coalesced\n",
		ft.Stats().Calls-baseCalls, cs.Coalesced)

	fmt.Printf("\ncache: %d hits, %d misses, %d stale serves, %d coalesced, %d stores\n",
		cs.Hits, cs.Misses, cs.StaleServes, cs.Coalesced, cs.Stores)
	return nil
}

// short trims wrapped error chains for one-line demo output.
func short(err error) string {
	var open *client.BreakerOpenError
	if errors.As(err, &open) {
		return "breaker open"
	}
	return err.Error()
}
