// Benchmarks regenerating the paper's evaluation (Section 5), one
// benchmark family per table/figure:
//
//   - BenchmarkTable6_*: cache-key generation per method per operation
//   - BenchmarkTable7_*: cached-data retrieval per representation per op
//   - BenchmarkTable8 / BenchmarkTable9: memory sizes (reported as
//     custom metrics, bytes do not vary with b.N)
//   - BenchmarkFigure3 / BenchmarkFigure4: the portal scenario sweep
//     (run with -benchtime 1x; each iteration is a full sweep)
//   - BenchmarkAblation*: the design-choice ablations from DESIGN.md §5
package repro_test

import (
	"bytes"
	"context"
	"encoding/xml"
	"fmt"
	"io"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/googleapi"
	"repro/internal/obs"
	"repro/internal/rep"
	"repro/internal/sax"
	"repro/internal/server"
	"repro/internal/soap"
	"repro/internal/transport"
)

// env is shared by all benchmarks; building it is cheap and
// deterministic.
func env(b *testing.B) *bench.Env {
	b.Helper()
	e, err := bench.NewEnv()
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// --- Table 6: cache key generation -----------------------------------

func benchKeyGen(b *testing.B, gen func(e *bench.Env) rep.KeyGenerator) {
	e := env(b)
	g := gen(e)
	for _, op := range e.Ops {
		b.Run(op.Label, func(b *testing.B) {
			if _, err := g.Key(op.Ctx); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := g.Key(op.Ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable6_KeyXMLMessage(b *testing.B) {
	benchKeyGen(b, func(e *bench.Env) rep.KeyGenerator { return rep.NewXMLMessageKey(e.Codec) })
}

func BenchmarkTable6_KeyBinarySerialization(b *testing.B) {
	benchKeyGen(b, func(e *bench.Env) rep.KeyGenerator { return rep.NewBinserKey(e.Reg) })
}

func BenchmarkTable6_KeyStringConcat(b *testing.B) {
	benchKeyGen(b, func(e *bench.Env) rep.KeyGenerator { return rep.NewStringKey() })
}

// --- Table 7: cached data retrieval -----------------------------------

// benchStoreLoad measures ValueStore.Load per operation; inapplicable
// combinations are skipped, mirroring the paper's n/a cells.
func benchStoreLoad(b *testing.B, mk func(e *bench.Env) rep.ValueStore, skip map[string]bool) {
	e := env(b)
	store := mk(e)
	for _, op := range e.Ops {
		b.Run(op.Label, func(b *testing.B) {
			if skip[op.Op] {
				b.Skipf("n/a: %s does not apply to %s (paper Table 7)", store.Name(), op.Op)
			}
			payload, _, err := store.Store(op.Ctx)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := store.Load(payload); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := store.Load(payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable7_LoadXMLMessage(b *testing.B) {
	benchStoreLoad(b, func(e *bench.Env) rep.ValueStore { return rep.NewXMLMessageStore(e.Codec) }, nil)
}

func BenchmarkTable7_LoadSAXEvents(b *testing.B) {
	benchStoreLoad(b, func(e *bench.Env) rep.ValueStore { return rep.NewSAXEventsStore(e.Codec) }, nil)
}

func BenchmarkTable7_LoadBinarySerialization(b *testing.B) {
	benchStoreLoad(b, func(e *bench.Env) rep.ValueStore { return rep.NewBinserStore(e.Reg) }, nil)
}

func BenchmarkTable7_LoadReflectCopy(b *testing.B) {
	benchStoreLoad(b, func(e *bench.Env) rep.ValueStore { return rep.NewReflectCopyStore(e.Reg) },
		map[string]bool{googleapi.OpSpellingSuggestion: true})
}

func BenchmarkTable7_LoadCloneCopy(b *testing.B) {
	benchStoreLoad(b, func(e *bench.Env) rep.ValueStore { return rep.NewCloneCopyStore() },
		map[string]bool{googleapi.OpSpellingSuggestion: true, googleapi.OpGetCachedPage: true})
}

func BenchmarkTable7_LoadPassByReference(b *testing.B) {
	benchStoreLoad(b, func(e *bench.Env) rep.ValueStore { return rep.NewRefStore(e.Reg, true) }, nil)
}

// BenchmarkTable7_LoadDOMTree is an extra row beyond the paper's six:
// the DOM post-parsing representation Section 3.3 names alongside SAX
// event sequences.
func BenchmarkTable7_LoadDOMTree(b *testing.B) {
	benchStoreLoad(b, func(e *bench.Env) rep.ValueStore { return rep.NewDOMStore(e.Codec) }, nil)
}

// --- Tables 8 and 9: memory sizes --------------------------------------

// BenchmarkTable8 reports key sizes as custom metrics (bytes are not a
// function of b.N; the loop exists to satisfy the benchmark contract).
func BenchmarkTable8(b *testing.B) {
	e := env(b)
	t8, err := e.Table8()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		_ = t8
	}
	for _, row := range t8.Rows {
		for j, col := range t8.Columns {
			b.ReportMetric(row.Cells[j].Value, metricName(row.Name, col))
		}
	}
}

// BenchmarkTable9 reports cached-object sizes as custom metrics.
func BenchmarkTable9(b *testing.B) {
	e := env(b)
	t9, err := e.Table9()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		_ = t9
	}
	for _, row := range t9.Rows {
		for j, col := range t9.Columns {
			b.ReportMetric(row.Cells[j].Value, metricName(row.Name, col))
		}
	}
}

// metricName builds a compact go-bench metric suffix.
func metricName(row, col string) string {
	clean := func(s string) string {
		out := make([]rune, 0, len(s))
		for _, r := range s {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
				out = append(out, r)
			}
		}
		return string(out)
	}
	return fmt.Sprintf("%s_%s_bytes", clean(row), clean(col))
}

// --- Figures 3 and 4: portal scenario ----------------------------------

// benchFigure runs one full sweep per iteration; invoke with
// -benchtime 1x for a single sweep, and read the printed series.
func benchFigure(b *testing.B, concurrency int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		series, err := bench.FigureContext(context.Background(), bench.FigureConfig{
			Concurrency:      concurrency,
			RequestsPerPoint: 300,
			HotQueries:       4,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", bench.FormatFigure(
				fmt.Sprintf("Figure (concurrency %d)", concurrency),
				"portal scenario sweep", series))
		}
	}
}

func BenchmarkFigure3_PortalSequential(b *testing.B) { benchFigure(b, 1) }

func BenchmarkFigure4_PortalConcurrent25(b *testing.B) { benchFigure(b, 25) }

// BenchmarkPortalConcurrency sweeps the simulated-user count over the
// all-hit portal scenario with the cheapest representation (pass by
// reference), so the shared cache core — not response materialization —
// dominates each request. Throughput is reported per point; on a
// multi-core host the sharded core should hold it near-flat as users
// grow, where a single global lock would flatline.
func BenchmarkPortalConcurrency(b *testing.B) {
	var ref []bench.StoreSpec
	for _, s := range bench.FigureStores() {
		if s.Name == "Pass by Reference" {
			ref = append(ref, s)
		}
	}
	if len(ref) != 1 {
		b.Fatal("Pass by Reference store spec not found")
	}
	for _, users := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("users=%d", users), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				series, err := bench.FigureContext(context.Background(), bench.FigureConfig{
					Concurrency:      users,
					RequestsPerPoint: 2000,
					HitRatios:        []float64{1},
					Stores:           ref,
					HotQueries:       4,
				})
				if err != nil {
					b.Fatal(err)
				}
				pt := series[0].Points[0]
				b.ReportMetric(pt.Throughput, "req/s")
				b.ReportMetric(float64(pt.AvgLatency.Nanoseconds()), "latency-ns")
			}
		})
	}
}

// --- Ablations (DESIGN.md §5) ------------------------------------------

// BenchmarkAblationGobVsBinser documents why encoding/gob is not the
// serialization representation: its per-message overhead at these
// sizes.
func BenchmarkAblationGobVsBinser(b *testing.B) {
	e := env(b)
	op, _ := e.Fixture(googleapi.OpGoogleSearch)
	for _, mk := range []func() rep.ValueStore{
		func() rep.ValueStore { return rep.NewGobStore(e.Reg) },
		func() rep.ValueStore { return rep.NewBinserStore(e.Reg) },
	} {
		store := mk()
		b.Run(store.Name(), func(b *testing.B) {
			payload, _, err := store.Store(op.Ctx)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := store.Load(payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationStoreCopy compares storing with copy-on-store (the
// call-by-copy-correct design) against a hypothetical reference store,
// quantifying what correctness costs on the miss path.
func BenchmarkAblationStoreCopy(b *testing.B) {
	e := env(b)
	op, _ := e.Fixture(googleapi.OpGoogleSearch)
	stores := []rep.ValueStore{
		rep.NewReflectCopyStore(e.Reg), // deep copy on store
		rep.NewRefStore(e.Reg, true),   // no copy on store
	}
	for _, store := range stores {
		b.Run(store.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := store.Store(op.Ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationAutoClassifier measures the overhead of the Section
// 6 run-time classifier against a statically configured store.
func BenchmarkAblationAutoClassifier(b *testing.B) {
	e := env(b)
	op, _ := e.Fixture(googleapi.OpGoogleSearch)
	static := rep.NewCloneCopyStore() // what Auto picks for this type
	auto := rep.NewAutoStore(e.Reg, e.Codec)

	b.Run("static clone", func(b *testing.B) {
		payload, _, err := static.Store(op.Ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := static.Load(payload); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("auto classifier", func(b *testing.B) {
		payload, _, err := auto.Store(op.Ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := auto.Load(payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationParseVsReplay isolates the tokenization cost the SAX
// representation saves: full parse+deserialize vs replay+deserialize of
// the same response.
func BenchmarkAblationParseVsReplay(b *testing.B) {
	e := env(b)
	op, _ := e.Fixture(googleapi.OpGoogleSearch)
	b.Run("parse+deserialize", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.Codec.DecodeEnvelope(op.Ctx.ResponseXML); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("replay+deserialize", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.Codec.DecodeEnvelopeEvents(op.Ctx.ResponseEvents); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parse only", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := sax.Parse(op.Ctx.ResponseXML, sax.NopHandler{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationEventRecordingTee measures the client-side cost of
// recording the SAX event sequence during the response parse (the
// RecordEvents option): one parse teed to two consumers vs one.
func BenchmarkAblationEventRecordingTee(b *testing.B) {
	e := env(b)
	op, _ := e.Fixture(googleapi.OpGoogleSearch)
	b.Run("decode only", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dh := e.Codec.NewDecodeHandler()
			if err := sax.Parse(op.Ctx.ResponseXML, dh.Handler()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode+record tee", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dh := e.Codec.NewDecodeHandler()
			rec := sax.NewRecorder()
			if err := sax.Parse(op.Ctx.ResponseXML, sax.Tee(rec, dh.Handler())); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationKeyLength isolates the table-lookup cost of key
// representation: longer keys (the XML message) hash and compare
// slower than compact string keys, on top of their generation cost.
func BenchmarkAblationKeyLength(b *testing.B) {
	e := env(b)
	op, _ := e.Fixture(googleapi.OpGoogleSearch)
	gens := []rep.KeyGenerator{
		rep.NewXMLMessageKey(e.Codec),
		rep.NewBinserKey(e.Reg),
		rep.NewStringKey(),
	}
	for _, g := range gens {
		key, err := g.Key(op.Ctx)
		if err != nil {
			b.Fatal(err)
		}
		table := map[string]int{key: 1}
		// Populate with sibling keys so the map has realistic buckets.
		for i := 0; i < 1000; i++ {
			c2 := *op.Ctx
			c2.Operation = fmt.Sprintf("op%d", i)
			k2, err := g.Key(&c2)
			if err != nil {
				b.Fatal(err)
			}
			table[k2] = i
		}
		b.Run(fmt.Sprintf("%s/len=%d", g.Name(), len(key)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if table[key] != 1 {
					b.Fatal("lookup failed")
				}
			}
		})
	}
}

// BenchmarkAblationScannerVsStdlib compares the from-scratch tokenizer
// against encoding/xml on the GoogleSearch response, validating that
// the substrate's XML costs are not artificially inflated.
func BenchmarkAblationScannerVsStdlib(b *testing.B) {
	e := env(b)
	op, _ := e.Fixture(googleapi.OpGoogleSearch)
	doc := op.Ctx.ResponseXML

	b.Run("internal xmltext+sax", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := sax.Parse(doc, sax.NopHandler{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stdlib encoding/xml", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dec := xml.NewDecoder(bytes.NewReader(doc))
			for {
				_, err := dec.Token()
				if err != nil {
					if err == io.EOF {
						break
					}
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkAblationEventArena compares the naive []sax.Event cache
// payload against the string-interned compact form: memory (reported as
// a metric) versus per-hit replay cost.
func BenchmarkAblationEventArena(b *testing.B) {
	e := env(b)
	op, _ := e.Fixture(googleapi.OpGoogleSearch)
	stores := []rep.ValueStore{
		rep.NewSAXEventsStore(e.Codec),
		rep.NewCompactSAXStore(e.Codec),
	}
	for _, store := range stores {
		b.Run(store.Name(), func(b *testing.B) {
			payload, size, err := store.Store(op.Ctx)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(size), "payload_bytes")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := store.Load(payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationEviction runs a cache under byte pressure vs
// unbounded, measuring the cost of LRU bookkeeping and eviction on the
// invocation path.
func BenchmarkAblationEviction(b *testing.B) {
	for _, tc := range []struct {
		name     string
		maxBytes int
	}{
		{"unbounded", 0},
		{"64KiB budget", 64 << 10},
	} {
		b.Run(tc.name, func(b *testing.B) {
			disp, codec, err := googleapi.NewDispatcher()
			if err != nil {
				b.Fatal(err)
			}
			cache := core.MustNew(core.Config{
				KeyGen:     rep.NewStringKey(),
				Store:      rep.NewAutoStore(codec.Registry(), codec),
				DefaultTTL: time.Hour,
				MaxBytes:   tc.maxBytes,
			})
			call := client.NewCall(codec, &transport.InProcess{Handler: disp},
				googleapi.Endpoint, googleapi.Namespace, googleapi.OpGoogleSearch, "",
				client.Options{RecordEvents: true, Handlers: []client.Handler{cache}})
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				params := googleapi.SearchParams("k", fmt.Sprintf("query %d", i%256), 0, 10, false, "", false, "")
				if _, err := call.Invoke(ctx, params...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationServerVsClientCache compares where the cache lives:
// client-side caching (the paper's design) eliminates the whole
// pipeline on a hit; server-side response caching still pays request
// serialization, transport, response parsing and deserialization on
// every call. The paper's preference for client-side caching follows
// directly (Section 1: "client-side caching can potentially achieve
// the greatest reduction").
func BenchmarkAblationServerVsClientCache(b *testing.B) {
	params := googleapi.SearchParams("k", "steady query", 0, 10, false, "", false, "")
	ctx := context.Background()

	b.Run("server-side cache", func(b *testing.B) {
		disp, codec, err := googleapi.NewDispatcher()
		if err != nil {
			b.Fatal(err)
		}
		cached := server.NewResponseCache(disp, server.ResponseCacheConfig{TTL: time.Hour})
		call := client.NewCall(codec, &transport.InProcess{Handler: cached},
			googleapi.Endpoint, googleapi.Namespace, googleapi.OpGoogleSearch, "",
			client.Options{})
		if _, err := call.Invoke(ctx, params...); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := call.Invoke(ctx, params...); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("client-side cache", func(b *testing.B) {
		disp, codec, err := googleapi.NewDispatcher()
		if err != nil {
			b.Fatal(err)
		}
		cache := core.MustNew(core.Config{
			KeyGen:     rep.NewStringKey(),
			Store:      rep.NewAutoStore(codec.Registry(), codec),
			DefaultTTL: time.Hour,
		})
		call := client.NewCall(codec, &transport.InProcess{Handler: disp},
			googleapi.Endpoint, googleapi.Namespace, googleapi.OpGoogleSearch, "",
			client.Options{RecordEvents: true, Handlers: []client.Handler{cache}})
		if _, err := call.Invoke(ctx, params...); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := call.Invoke(ctx, params...); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("both", func(b *testing.B) {
		disp, codec, err := googleapi.NewDispatcher()
		if err != nil {
			b.Fatal(err)
		}
		cached := server.NewResponseCache(disp, server.ResponseCacheConfig{TTL: time.Hour})
		cache := core.MustNew(core.Config{
			KeyGen:     rep.NewStringKey(),
			Store:      rep.NewAutoStore(codec.Registry(), codec),
			DefaultTTL: time.Hour,
		})
		call := client.NewCall(codec, &transport.InProcess{Handler: cached},
			googleapi.Endpoint, googleapi.Namespace, googleapi.OpGoogleSearch, "",
			client.Options{RecordEvents: true, Handlers: []client.Handler{cache}})
		if _, err := call.Invoke(ctx, params...); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := call.Invoke(ctx, params...); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationRevalidation compares refilling an expired entry
// with a full response against refreshing it with a 304 validator
// answer (the HTTP consistency integration, paper Section 3.2).
func BenchmarkAblationRevalidation(b *testing.B) {
	params := googleapi.SearchParams("k", "steady query", 0, 10, false, "", false, "")
	ctx := context.Background()
	newStack := func(revalidate bool) (*client.Call, func()) {
		disp, codec, err := googleapi.NewDispatcher()
		if err != nil {
			b.Fatal(err)
		}
		disp.SetValidatorPolicy(time.Now().Add(-24*time.Hour), time.Minute)
		nowSec := new(int64)
		atomic.StoreInt64(nowSec, time.Now().Unix())
		cache := core.MustNew(core.Config{
			KeyGen:     rep.NewStringKey(),
			Store:      rep.NewAutoStore(codec.Registry(), codec),
			DefaultTTL: time.Minute,
			Revalidate: revalidate,
			Clock:      func() time.Time { return time.Unix(atomic.LoadInt64(nowSec), 0) },
		})
		call := client.NewCall(codec, &transport.InProcess{Handler: disp},
			googleapi.Endpoint, googleapi.Namespace, googleapi.OpGoogleSearch, "",
			client.Options{RecordEvents: true, Handlers: []client.Handler{cache}})
		expire := func() { atomic.AddInt64(nowSec, 120) }
		return call, expire
	}
	for _, mode := range []struct {
		name       string
		revalidate bool
	}{
		{"full refill", false},
		{"304 revalidate", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			call, expire := newStack(mode.revalidate)
			if _, err := call.Invoke(ctx, params...); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				expire() // force the entry stale before each call
				if _, err := call.Invoke(ctx, params...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEndToEnd compares a full uncached invocation against a
// cache-hit invocation through the complete middleware stack — the
// end-to-end version of the paper's headline claim.
func BenchmarkEndToEnd(b *testing.B) {
	newCall := func(withCache bool) (*client.Call, error) {
		disp, codec, err := googleapi.NewDispatcher()
		if err != nil {
			return nil, err
		}
		var handlers []client.Handler
		if withCache {
			handlers = append(handlers, core.MustNew(core.Config{
				KeyGen:     rep.NewStringKey(),
				Store:      rep.NewAutoStore(codec.Registry(), codec),
				DefaultTTL: time.Hour,
			}))
		}
		return client.NewCall(codec, &transport.InProcess{Handler: disp},
			googleapi.Endpoint, googleapi.Namespace, googleapi.OpGoogleSearch, "",
			client.Options{RecordEvents: true, Handlers: handlers}), nil
	}
	params := googleapi.SearchParams("k", "steady query", 0, 10, false, "", false, "")
	ctx := context.Background()

	b.Run("uncached", func(b *testing.B) {
		call, err := newCall(false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := call.Invoke(ctx, params...); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cache hit", func(b *testing.B) {
		call, err := newCall(true)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := call.Invoke(ctx, params...); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := call.Invoke(ctx, params...); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// repHitCall builds a full middleware stack whose client cache uses
// either the static Section 6 classifier or the adaptive selector, for
// steady-state hit-path comparisons.
func repHitCall(tb testing.TB, adaptive bool) *client.Call {
	tb.Helper()
	disp, codec, err := googleapi.NewDispatcher()
	if err != nil {
		tb.Fatal(err)
	}
	cfg := core.Config{
		KeyGen:     rep.NewStringKey(),
		DefaultTTL: time.Hour,
	}
	if adaptive {
		cfg.Rep = rep.NewRegistry(codec.Registry(), codec) // Store nil: core's default selector
	} else {
		cfg.Store = rep.NewAutoStore(codec.Registry(), codec)
	}
	cache := core.MustNew(cfg)
	return client.NewCall(codec, &transport.InProcess{Handler: disp},
		googleapi.Endpoint, googleapi.Namespace, googleapi.OpGoogleSearch, "",
		client.Options{RecordEvents: true, Handlers: []client.Handler{cache}})
}

// BenchmarkRepSelector compares a full-stack cache hit under the static
// classifier against the adaptive selector in steady state. The
// selector's hit-path tax is one atomic counter plus a 1-in-N sampled
// timing, so the two variants must stay within noise of each other;
// TestRepSelectorHitOverhead enforces the <5% bound.
func BenchmarkRepSelector(b *testing.B) {
	params := googleapi.SearchParams("k", "steady query", 0, 10, false, "", false, "")
	ctx := context.Background()
	for _, tc := range []struct {
		name     string
		adaptive bool
	}{
		{"static auto", false},
		{"adaptive selector", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			call := repHitCall(b, tc.adaptive)
			if _, err := call.Invoke(ctx, params...); err != nil { // warm: fill the entry
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := call.Invoke(ctx, params...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// diffHitCall builds a full middleware stack whose client cache is
// statically pinned to one streaming representation and whose call
// opts into streamed hits, for the DESIGN.md §5i differential-
// serialization benchmarks. recordEvents is set for xmltmpl (template
// building wants the recorded sequence; raw replay needs only the
// response bytes).
func diffHitCall(tb testing.TB, repName string, recordEvents bool) *client.Call {
	tb.Helper()
	disp, codec, err := googleapi.NewDispatcher()
	if err != nil {
		tb.Fatal(err)
	}
	reg := rep.NewRegistry(codec.Registry(), codec)
	spec, err := reg.ValueSpecFor(repName)
	if err != nil {
		tb.Fatal(err)
	}
	cache := core.MustNew(core.Config{
		KeyGen:     rep.NewStringKey(),
		Store:      spec.Store,
		DefaultTTL: time.Hour,
	})
	return client.NewCall(codec, &transport.InProcess{Handler: disp},
		googleapi.Endpoint, googleapi.Namespace, googleapi.OpGoogleSearch, "",
		client.Options{RecordEvents: recordEvents, AcceptStream: true,
			Handlers: []client.Handler{cache}})
}

// streamHit runs one full-stack hit and replays the streamed response
// into w.
func streamHit(tb testing.TB, call *client.Call, ctx context.Context,
	params []soap.Param, w io.Writer) {
	ictx, err := call.InvokeContext(ctx, params...)
	if err != nil {
		tb.Fatal(err)
	}
	wt, ok := ictx.Stream()
	if !ok {
		tb.Fatalf("stream-accepting invocation yields no stream (result %T)", ictx.Result)
	}
	if _, err := wt.WriteTo(w); err != nil {
		tb.Fatal(err)
	}
}

// BenchmarkDiffHit is the headline comparison for differential
// serialization and zero-copy replay (DESIGN.md §5i): a steady-state
// full-stack cache hit under the object-representation baselines
// against the two streaming representations. The baselines hand back a
// materialized object; the streaming rows additionally replay the
// serialized response into a writer — strictly more delivered work —
// and must still be the cheapest rows in the table.
func BenchmarkDiffHit(b *testing.B) {
	params := googleapi.SearchParams("k", "steady query", 0, 10, false, "", false, "")
	ctx := context.Background()

	for _, tc := range []struct {
		name     string
		adaptive bool
	}{
		{"baseline auto", false},
		{"baseline adaptive", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			call := repHitCall(b, tc.adaptive)
			if _, err := call.Invoke(ctx, params...); err != nil { // warm: fill the entry
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := call.Invoke(ctx, params...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, tc := range []struct {
		name         string
		rep          string
		recordEvents bool
	}{
		{"raw replay", "raw", false},
		{"xmltmpl splice", "xmltmpl", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			call := diffHitCall(b, tc.rep, tc.recordEvents)
			streamHit(b, call, ctx, params, io.Discard) // warm: fill entry, grow pool buffer
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				streamHit(b, call, ctx, params, io.Discard)
			}
		})
	}
}

// TestDiffHitAllocs is the §5i allocation guard: a steady-state
// full-stack hit that replays the response must allocate at most twice
// per call (the invocation context; everything else rides pooled or
// immutable state). Guarded for both streaming representations.
func TestDiffHitAllocs(t *testing.T) {
	params := googleapi.SearchParams("k", "steady query", 0, 10, false, "", false, "")
	ctx := context.Background()
	for _, tc := range []struct {
		name         string
		rep          string
		recordEvents bool
	}{
		{"raw", "raw", false},
		{"xmltmpl", "xmltmpl", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			call := diffHitCall(t, tc.rep, tc.recordEvents)
			streamHit(t, call, ctx, params, io.Discard) // fill
			streamHit(t, call, ctx, params, io.Discard) // settle pools
			allocs := testing.AllocsPerRun(200, func() {
				streamHit(t, call, ctx, params, io.Discard)
			})
			if allocs > 2 {
				t.Errorf("steady-state %s hit allocates %.1f times per call, want <= 2", tc.rep, allocs)
			}
		})
	}
}

// TestRepSelectorHitOverhead is the selector's acceptance guard: in
// steady state a hit through the adaptive selector must cost no more
// than 5% over the static classifier. Timing is interleaved and the
// best of several trials is taken to damp scheduler noise.
func TestRepSelectorHitOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard; skipped in -short")
	}
	params := googleapi.SearchParams("k", "steady query", 0, 10, false, "", false, "")
	ctx := context.Background()
	static := repHitCall(t, false)
	adaptive := repHitCall(t, true)

	measure := func(call *client.Call, n int) time.Duration {
		start := time.Now()
		for i := 0; i < n; i++ {
			if _, err := call.Invoke(ctx, params...); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	measure(static, 200) // warm both: fill entries, settle allocators
	measure(adaptive, 200)

	const trials, n, limit = 5, 2000, 1.05
	best := func() float64 {
		best := 0.0
		for i := 0; i < trials; i++ {
			s := measure(static, n)
			a := measure(adaptive, n)
			ratio := float64(a) / float64(s)
			if i == 0 || ratio < best {
				best = ratio
			}
			if best <= limit {
				break
			}
		}
		return best
	}()
	if best > limit {
		t.Errorf("adaptive/static hit cost ratio = %.3f in the best of %d trials, want <= %.2f",
			best, trials, limit)
	}
}

// BenchmarkObsOverhead measures what the observability layer costs on
// the hottest path, a cache hit through the full middleware stack.
// "off" is the default configuration (no registry, no tracer): stage
// timing is compiled out behind a single bool, so this variant must
// stay within noise (<5%) of the pre-instrumentation baseline.
// "registry" pays for clock reads plus histogram updates per stage,
// and "registry+tracer" adds the callback dispatch.
func BenchmarkObsOverhead(b *testing.B) {
	newCall := func(reg *obs.Registry, tracer obs.Tracer) (*client.Call, error) {
		disp, codec, err := googleapi.NewDispatcher()
		if err != nil {
			return nil, err
		}
		cache := core.MustNew(core.Config{
			KeyGen:     rep.NewStringKey(),
			Store:      rep.NewAutoStore(codec.Registry(), codec),
			DefaultTTL: time.Hour,
			Obs:        reg,
			Tracer:     tracer,
		})
		return client.NewCall(codec, &transport.InProcess{Handler: disp},
			googleapi.Endpoint, googleapi.Namespace, googleapi.OpGoogleSearch, "",
			client.Options{RecordEvents: true, Handlers: []client.Handler{cache},
				Obs: reg, Tracer: tracer}), nil
	}
	params := googleapi.SearchParams("k", "steady query", 0, 10, false, "", false, "")
	ctx := context.Background()
	nopTracer := obs.TracerFunc(func(string, obs.Stage, string, time.Duration, error) {})

	for _, tc := range []struct {
		name   string
		reg    *obs.Registry
		tracer obs.Tracer
	}{
		{"off", nil, nil},
		{"registry", obs.NewRegistry(), nil},
		{"registry+tracer", obs.NewRegistry(), nopTracer},
	} {
		b.Run(tc.name, func(b *testing.B) {
			call, err := newCall(tc.reg, tc.tracer)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := call.Invoke(ctx, params...); err != nil { // warm: fill the entry
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := call.Invoke(ctx, params...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSOAPCodec tracks the substrate itself: encoding and decoding
// the Table 5 payloads.
func BenchmarkSOAPCodec(b *testing.B) {
	e := env(b)
	for _, op := range e.Ops {
		b.Run("encode/"+op.Label, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := e.Codec.EncodeResponse(googleapi.Namespace, op.Op, op.Ctx.Result); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("decode/"+op.Label, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := e.Codec.DecodeEnvelope(op.Ctx.ResponseXML); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
