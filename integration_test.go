// Whole-stack integration tests over real HTTP: the dummy Google
// service behind net/http, the caching client in front, exercising the
// complete wire path the paper's Figure 1 describes — including the
// consistency validators and both cache placements.
package repro_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"repro/internal/rep"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/googleapi"
	"repro/internal/googlegen"
	"repro/internal/server"
	"repro/internal/soap"
	"repro/internal/transport"
	"repro/internal/typemap"
	"repro/internal/wsdl"
)

// countingHandler wraps a handler and counts requests reaching it.
type countingHandler struct {
	inner http.Handler
	n     atomic.Int64
}

func (h *countingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.n.Add(1)
	h.inner.ServeHTTP(w, r)
}

func TestIntegrationHTTPCachingClient(t *testing.T) {
	disp, codec, err := googleapi.NewDispatcher()
	if err != nil {
		t.Fatal(err)
	}
	backend := &countingHandler{inner: disp}
	srv := httptest.NewServer(backend)
	defer srv.Close()

	cache := core.MustNew(core.Config{
		KeyGen:     rep.NewStringKey(),
		Store:      rep.NewAutoStore(codec.Registry(), codec),
		DefaultTTL: time.Hour,
	})
	call := client.NewCall(codec, &transport.HTTP{}, srv.URL, googleapi.Namespace,
		googleapi.OpGoogleSearch, "urn:GoogleSearchAction",
		client.Options{RecordEvents: true, Handlers: []client.Handler{cache}})

	params := googleapi.SearchParams("k", "integration", 0, 10, false, "", false, "")
	ctx := context.Background()

	r1, err := call.Invoke(ctx, params...)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := call.Invoke(ctx, params...)
	if err != nil {
		t.Fatal(err)
	}
	if backend.n.Load() != 1 {
		t.Errorf("backend requests = %d, want 1", backend.n.Load())
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Error("cached result differs")
	}
	if r1 == r2 {
		t.Error("cache shared a mutable result")
	}
}

func TestIntegrationHTTPRevalidation(t *testing.T) {
	disp, codec, err := googleapi.NewDispatcher()
	if err != nil {
		t.Fatal(err)
	}
	disp.SetValidatorPolicy(time.Now().Add(-time.Hour), time.Minute)
	backend := &countingHandler{inner: disp}
	srv := httptest.NewServer(backend)
	defer srv.Close()

	nowSec := new(int64)
	atomic.StoreInt64(nowSec, time.Now().Unix())
	cache := core.MustNew(core.Config{
		KeyGen:     rep.NewStringKey(),
		Store:      rep.NewAutoStore(codec.Registry(), codec),
		DefaultTTL: time.Minute,
		Revalidate: true,
		Clock:      func() time.Time { return time.Unix(atomic.LoadInt64(nowSec), 0) },
	})
	call := client.NewCall(codec, &transport.HTTP{}, srv.URL, googleapi.Namespace,
		googleapi.OpGoogleSearch, "urn:GoogleSearchAction",
		client.Options{RecordEvents: true, Handlers: []client.Handler{cache}})
	params := googleapi.SearchParams("k", "reval", 0, 10, false, "", false, "")

	if _, err := call.Invoke(context.Background(), params...); err != nil {
		t.Fatal(err)
	}
	atomic.AddInt64(nowSec, 120)
	ictx, err := call.InvokeContext(context.Background(), params...)
	if err != nil {
		t.Fatal(err)
	}
	if !ictx.NotModified || !ictx.CacheHit {
		t.Errorf("expected a 304 refresh over real HTTP: 304=%v hit=%v", ictx.NotModified, ictx.CacheHit)
	}
	if backend.n.Load() != 2 {
		t.Errorf("backend requests = %d, want 2 (one full, one conditional)", backend.n.Load())
	}
	if cache.Stats().Revalidations != 1 {
		t.Errorf("revalidations = %d", cache.Stats().Revalidations)
	}
}

func TestIntegrationServerSideCacheOverHTTP(t *testing.T) {
	disp, codec, err := googleapi.NewDispatcher()
	if err != nil {
		t.Fatal(err)
	}
	var handlerCalls atomic.Int64
	disp.Register("counted", func(params []soap.Param) (any, error) {
		handlerCalls.Add(1)
		return "ok", nil
	})
	cached := server.NewResponseCache(disp, server.ResponseCacheConfig{TTL: time.Hour})
	srv := httptest.NewServer(cached)
	defer srv.Close()

	call := client.NewCall(codec, &transport.HTTP{}, srv.URL, googleapi.Namespace,
		"counted", "", client.Options{})
	for i := 0; i < 3; i++ {
		res, err := call.Invoke(context.Background(), soap.Param{Name: "q", Value: "same"})
		if err != nil {
			t.Fatal(err)
		}
		if res != "ok" {
			t.Errorf("res = %#v", res)
		}
	}
	if handlerCalls.Load() != 1 {
		t.Errorf("handler calls = %d, want 1 (server cache)", handlerCalls.Load())
	}
}

func TestIntegrationGeneratedClientOverHTTP(t *testing.T) {
	disp, _, err := googleapi.NewDispatcher()
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(disp)
	defer srv.Close()

	reg := typemap.NewRegistry()
	if err := googlegen.RegisterTypes(reg); err != nil {
		t.Fatal(err)
	}
	defs, err := wsdl.Parse([]byte(googleapi.WSDL))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := googlegen.NewGoogleSearchClient(defs, soap.NewCodec(reg), &transport.HTTP{},
		client.ServiceConfig{Endpoint: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.DoGoogleSearch(context.Background(), "k", "generated over http", 0, 10, false, "", false, "", "latin1", "latin1")
	if err != nil {
		t.Fatal(err)
	}
	if res.SearchQuery != "generated over http" || len(res.ResultElements) == 0 {
		t.Errorf("result = %+v", res)
	}
}

func TestIntegrationWSDLServedAndConsumed(t *testing.T) {
	// Serve the WSDL like cmd/dummygoogle does; fetch and parse it, and
	// drive a call from the parsed description.
	disp, codec, err := googleapi.NewDispatcher()
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("/", disp)
	mux.HandleFunc("/wsdl", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte(googleapi.WSDL))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/wsdl")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	wsdlDoc, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	defs, err := wsdl.Parse(wsdlDoc)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := client.NewService(defs, codec, &transport.HTTP{}, client.ServiceConfig{Endpoint: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	res, err := svc.Invoke(context.Background(), googleapi.OpSpellingSuggestion,
		googleapi.SpellingParams("k", "helo")...)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.(string); !ok {
		t.Errorf("res = %T", res)
	}
}
