# Reproduction of "Efficient Web Services Response Caching by Selecting
# Optimal Data Representation" (ICDCS 2004). See README.md.

GO ?= go

.PHONY: all check build vet lint lint-fix test race cover bench bench-rep bench-diff bench-inval bench-cluster bench-all bench-smoke chaos tables figures fuzz generate clean

all: build vet lint test

# The CI gate: everything must build, vet and wscachelint clean, and
# pass under the race detector (the resilience paths are
# concurrency-heavy).
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) run ./cmd/wscachelint ./...
	$(GO) test -race ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Domain-specific static analysis (internal/lint/checks). Suppress a
# finding with //lint:ignore <check> <reason> on or above the line.
lint:
	$(GO) run ./cmd/wscachelint ./...

# Apply the analyzers' suggested fixes in place (atomicmix atomic
# rewrites, epochgraph constant substitution, hotpath Sprintf folding),
# then print what remains for hand repair.
lint-fix:
	$(GO) run ./cmd/wscachelint -fix ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -coverprofile=cover.out -coverpkg=./internal/... ./...
	$(GO) tool cover -func=cover.out | tail -1

# Track the cache-core perf trajectory: hit-path microbenchmarks plus
# the portal concurrency sweep, archived as BENCH_core.json (ns/op,
# allocs/op, parallel throughput). Compare against the checked-in file
# before and after touching the hot path.
bench:
	{ $(GO) test -run NONE -bench 'BenchmarkHit' -benchmem ./internal/core && \
	  $(GO) test -run NONE -bench 'BenchmarkPortalConcurrency' -benchtime 1x ./; } \
	| $(GO) run ./cmd/benchjson -o BENCH_core.json \
	  -note "checked-in run: single-CPU container (GOMAXPROCS=1), so parallel scaling cannot manifest; pre-shard baseline on the same harness and host: HitSerial 342.4 ns/op 1 alloc/op, HitParallel/16 312.9 ns/op"
	@cat BENCH_core.json

# Track the adaptive representation selector: a full-stack cache hit
# under the static Section 6 classifier vs the measured-cost selector,
# archived as BENCH_rep.json. The selector's steady-state hit must stay
# within 5% of static (TestRepSelectorHitOverhead enforces it).
bench-rep:
	$(GO) test -run NONE -bench 'BenchmarkRepSelector' -benchmem ./ \
	| $(GO) run ./cmd/benchjson -o BENCH_rep.json \
	  -note "checked-in run: single-CPU container; steady-state full-stack hit, entry filled by the selector's first probe round"
	@cat BENCH_rep.json

# Track differential serialization and zero-copy replay (DESIGN.md
# §5i): a steady-state full-stack hit under the object baselines vs the
# raw-replay and template-splice representations, archived as
# BENCH_diff.json. The streaming rows deliver the serialized response
# to a writer and must still be the cheapest; TestDiffHitAllocs holds
# them at <= 2 allocs/op.
bench-diff:
	$(GO) test -run NONE -bench 'BenchmarkDiffHit' -benchtime 2s -benchmem ./ \
	| $(GO) run ./cmd/benchjson -o BENCH_diff.json \
	  -note "checked-in run: single-CPU container; steady-state full-stack hit, streaming rows replay the response into io.Discard on every call"
	@cat BENCH_diff.json

# Track the invalidation epoch check on the hit path: BenchmarkHitInval
# is BenchmarkHitSerial with two epoch stamps per entry, archived as
# BENCH_inval.json. TestInvalHitOverhead holds the delta under 5%.
bench-inval:
	$(GO) test -run NONE -bench 'BenchmarkHitSerial|BenchmarkHitInval' -benchmem ./internal/core \
	| $(GO) run ./cmd/benchjson -o BENCH_inval.json \
	  -note "checked-in run: single-CPU container; HitInval adds the per-hit epoch-stamp check (two atomic loads) over HitSerial"
	@cat BENCH_inval.json

# Track the tier hierarchy: the same doGetItem served from the
# process-local L1, from a shared wscached-style daemon over loopback
# TCP (L2 hit), and by the HTTP origin, archived as BENCH_cluster.json.
# The point of the shared tier is the middle row: an L2 hit must beat
# the origin round trip or promotion is pure overhead.
bench-cluster:
	$(GO) test -run NONE -bench 'BenchmarkCluster' -benchmem ./ \
	| $(GO) run ./cmd/benchjson -o BENCH_cluster.json \
	  -note "checked-in run: single-CPU container; L1 = in-process hit, L2 = daemon hit over loopback TCP, Origin = full SOAP round trip over loopback HTTP"
	@cat BENCH_cluster.json

# The invalidation chaos harness under the race detector: mixed
# read/write load, injected faults, lying 304 validator, sweep/Clear
# churn, zero-stale-after-write oracle. Target only the packages that
# carry the tests — a wildcard piped through grep to hide "no test
# files" noise would also swallow go test's failure status (the pipe's
# exit code is grep's, and make has no pipefail).
chaos:
	$(GO) test -race -run 'Chaos' -v .
	$(GO) test -race -run 'InvalidationConcurrentStress' -v ./internal/core

# One-iteration CI smoke: proves the benchmarks and the JSON emitter
# still run; the numbers are meaningless at -benchtime 1x.
bench-smoke:
	{ $(GO) test -run NONE -bench 'BenchmarkHit' -benchtime 1x -benchmem ./internal/core && \
	  $(GO) test -run NONE -bench 'BenchmarkPortalConcurrency/users=4|BenchmarkRepSelector|BenchmarkDiffHit' -benchtime 1x ./; } \
	| $(GO) run ./cmd/benchjson

# Regenerate every table and figure of the paper's evaluation.
bench-all:
	$(GO) test -bench=. -benchmem ./...

tables:
	$(GO) run ./cmd/wscache-bench

figures:
	$(GO) run ./cmd/portalbench -figure 3
	$(GO) run ./cmd/portalbench -figure 4

# Brief fuzzing pass over the wire-facing surfaces.
fuzz:
	$(GO) test -fuzz FuzzScanner -fuzztime 30s ./internal/xmltext
	$(GO) test -fuzz FuzzEscapeRoundTrip -fuzztime 30s ./internal/xmltext
	$(GO) test -fuzz FuzzDecodeEnvelope -fuzztime 30s ./internal/soap
	$(GO) test -fuzz FuzzTemplateSplice -fuzztime 30s ./internal/sax

# Regenerate the checked-in WSDL compiler output.
generate:
	$(GO) run ./cmd/wsdlgen -pkg googlegen -o internal/googlegen/googlegen.go

clean:
	rm -f cover.out test_output.txt bench_output.txt
