// Chaos harness for dependency-aware invalidation: a mixed read/write
// load (internal/loadgen) against the dummy Google item operations
// through a fault-injecting transport (internal/faultify), with a
// deliberately lying HTTP validator and background sweep churn, all
// under an oracle asserting the stale-after-write invariant: once a
// write of value v to key k has returned, no later read of k may
// observe a value older than v — not from a hit, not from a 304
// revalidation, not from degraded stale-on-error serving. Run it with
// -race; the scheduler noise is part of the test.
package repro_test

import (
	"context"
	"errors"
	"fmt"
	"repro/internal/rep"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/faultify"
	"repro/internal/googleapi"
	"repro/internal/invalidate"
	"repro/internal/loadgen"
	"repro/internal/obs"
	"repro/internal/soap"
	"repro/internal/transport"
)

// chaosHarness wires the full stack: dispatcher + item store behind a
// faultify transport, caching client with invalidation in front.
type chaosHarness struct {
	store *googleapi.ItemStore
	fault *faultify.Transport
	cache *core.Cache
	reg   *obs.Registry
	get   *client.Call
	put   *client.Call
}

func newChaosHarness(t *testing.T, fcfg faultify.Config, ttl, staleIfError time.Duration) *chaosHarness {
	t.Helper()
	disp, codec, err := googleapi.NewDispatcher()
	if err != nil {
		t.Fatal(err)
	}
	store := googleapi.NewItemStore()
	store.Register(disp)
	// A lying validator: the server stamps every response as
	// unmodified-for-an-hour and answers 304 to every conditional
	// request, even after a put changed the data. TTL revalidation alone
	// would resurrect pre-write values; only the epoch check stands
	// between a committed write and a stale 304 refresh.
	disp.SetValidatorPolicy(time.Now().Add(-time.Hour), time.Hour)

	fault := faultify.New(&transport.InProcess{Handler: disp}, fcfg)
	reg := obs.NewRegistry()
	cache := core.MustNew(core.Config{
		KeyGen:       rep.NewStringKey(),
		Store:        rep.NewAutoStore(codec.Registry(), codec),
		DefaultTTL:   ttl,
		StaleIfError: staleIfError,
		Revalidate:   true,
		Coalesce:     true,
		Obs:          reg,
		Invalidator:  invalidate.New(googleapi.ItemGraph(), reg),
		Policy: core.Policy{
			DefaultExplicit: true, // writes and unknown ops bypass the cache
			Operations: map[string]core.OperationPolicy{
				googleapi.OpGetItem: {Cacheable: true},
			},
		},
	})
	mkCall := func(op string) *client.Call {
		return client.NewCall(codec, fault, googleapi.Endpoint, googleapi.Namespace,
			op, "urn:GoogleSearchAction",
			client.Options{RecordEvents: true, Handlers: []client.Handler{cache}})
	}
	return &chaosHarness{
		store: store,
		fault: fault,
		cache: cache,
		reg:   reg,
		get:   mkCall(googleapi.OpGetItem),
		put:   mkCall(googleapi.OpPutItem),
	}
}

// TestChaosNoStaleAfterWrite is the adversarial proof. 16 virtual
// users issue a mixed profile over 8 hot keys — hits, cold misses, and
// write-through puts — while the transport injects failures,
// truncations, and garbled envelopes, the server lies in every 304,
// entries expire on a millisecond TTL, degraded serving is armed, and
// a background goroutine sweeps and clears the cache. The per-key
// floor oracle must never observe a pre-write value.
func TestChaosNoStaleAfterWrite(t *testing.T) {
	h := newChaosHarness(t, faultify.Config{
		ErrorRate:    0.05,
		TruncateRate: 0.02,
		GarbleRate:   0.02,
		Seed:         42,
	}, 2*time.Millisecond, 500*time.Millisecond)

	const hotKeys = 8
	hot := make([]string, hotKeys)
	for i := range hot {
		hot[i] = fmt.Sprintf("k%d", i)
	}
	var (
		writeMu    [hotKeys]sync.Mutex   // serializes writers per key: backend values stay monotone
		attempted  [hotKeys]atomic.Int64 // highest value ever sent (even if the call errored)
		committed  [hotKeys]atomic.Int64 // floor: highest value whose put returned success
		violations atomic.Int64
	)
	keyIndex := func(q string) int {
		n, err := strconv.Atoi(strings.TrimPrefix(q, "k"))
		if err != nil || n < 0 || n >= hotKeys {
			return -1
		}
		return n
	}

	// Sweep/Clear churn runs for the whole load: reclamation and even
	// full cache wipes may cost hits but never correctness.
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			h.cache.SweepExpired()
			if i%13 == 0 {
				h.cache.Clear()
			}
			time.Sleep(time.Millisecond)
		}
	}()

	ctx := context.Background()
	res, err := loadgen.RunContext(ctx, loadgen.Config{
		Concurrency: 16,
		Requests:    4000,
		HitRatio:    0.55,
		WriteRatio:  0.15,
		HotQueries:  hot,
		MissQuery:   func(i int) string { return fmt.Sprintf("cold-%d", i) },
		Do: func(q string) error {
			k := keyIndex(q)
			var floor int64
			if k >= 0 {
				floor = committed[k].Load()
			}
			res, err := h.get.Invoke(ctx, googleapi.GetItemParams(q)...)
			if err != nil {
				return err // injected or decode failure; nothing was served
			}
			if k < 0 {
				return nil
			}
			got := parseChaosValue(res)
			if got < floor {
				violations.Add(1)
				return fmt.Errorf("stale-after-write: key %s read %d, floor %d", q, got, floor)
			}
			return nil
		},
		Write: func(q string) error {
			k := keyIndex(q)
			writeMu[k].Lock()
			defer writeMu[k].Unlock()
			v := attempted[k].Load() + 1
			attempted[k].Store(v)
			_, err := h.put.Invoke(ctx, googleapi.PutItemParams(q, strconv.FormatInt(v, 10))...)
			if err == nil {
				// The put returned: the cache bumped the write-set epochs
				// before HandleInvoke returned, so any read starting now
				// must see at least v.
				committed[k].Store(v)
			}
			// On error the write may or may not have reached the store;
			// the floor stays put (conservative) and the cache bumped
			// anyway (also conservative).
			return err
		},
		Classify: func(err error) string {
			if errors.Is(err, faultify.ErrInjected) {
				return "injected"
			}
			if strings.Contains(err.Error(), "stale-after-write") {
				return "violation"
			}
			return "decode"
		},
	})
	close(stop)
	churn.Wait()
	if err != nil {
		t.Fatal(err)
	}

	t.Logf("chaos run: %v", res)
	t.Logf("faults injected: %+v", h.fault.Stats())
	stats := h.cache.Stats()
	t.Logf("cache: hits=%d misses=%d invalidations=%d staleServes=%d staleRefused=%d revalidations=%d",
		stats.Hits, stats.Misses, stats.Invalidations, stats.StaleServes, stats.StaleRefused, stats.Revalidations)

	if n := violations.Load(); n != 0 {
		t.Fatalf("%d stale-after-write violations", n)
	}
	if res.Classes["violation"] != 0 {
		t.Fatalf("loadgen classified %d violations", res.Classes["violation"])
	}
	if stats.Invalidations == 0 {
		t.Error("chaos run recorded no invalidations; the write path was not exercised")
	}
	if res.Writes == 0 {
		t.Error("chaos run issued no writes")
	}

	// The invalidation state must be visible through obs: epoch gauges
	// in the inspection snapshot and the bump counter.
	snap := h.reg.Snapshot()
	if snap.Counters["invalidate.bumps"] == 0 {
		t.Error("obs counter invalidate.bumps is zero")
	}
	epochs, ok := snap.Inspections["invalidation"].(map[string]uint64)
	if !ok {
		t.Fatalf("obs inspection %q missing or wrong type: %T", "invalidation", snap.Inspections["invalidation"])
	}
	if epochs["item:k0"] == 0 && epochs["items"] == 0 {
		t.Errorf("epoch gauges empty after %d writes: %v", res.Writes, epochs)
	}
}

// parseChaosValue turns a doGetItem result into its integer value; the
// empty string (never written) is 0.
func parseChaosValue(res any) int64 {
	s, _ := res.(string)
	if s == "" {
		return 0
	}
	n, _ := strconv.ParseInt(s, 10, 64)
	return n
}

// TestChaosLyingValidatorCannotResurrect pins the deterministic core of
// the chaos claim without load: fill, let the TTL lapse, write through,
// and demand the next read refetch — even though the server will
// happily answer 304 to a conditional request for the invalidated
// entry.
func TestChaosLyingValidatorCannotResurrect(t *testing.T) {
	h := newChaosHarness(t, faultify.Config{}, time.Millisecond, 0)
	ctx := context.Background()

	mustPut := func(key, val string) {
		t.Helper()
		if _, err := h.put.Invoke(ctx, googleapi.PutItemParams(key, val)...); err != nil {
			t.Fatal(err)
		}
	}
	get := func(key string) string {
		t.Helper()
		res, err := h.get.Invoke(ctx, googleapi.GetItemParams(key)...)
		if err != nil {
			t.Fatal(err)
		}
		s, _ := res.(string)
		return s
	}

	mustPut("x", "1")
	if got := get("x"); got != "1" {
		t.Fatalf("initial read = %q, want 1", got)
	}
	time.Sleep(5 * time.Millisecond) // TTL lapses; entry is revalidation bait
	mustPut("x", "2")
	if got := get("x"); got != "2" {
		t.Fatalf("post-write read = %q, want 2 (304 resurrected a stale entry)", got)
	}
	if inv := h.cache.Stats().Invalidations; inv == 0 {
		t.Error("no invalidation recorded for the write")
	}
}

// TestChaosStaleOnErrorRefusesAfterWrite pins the degraded-serving arm
// deterministically: a scripted outage immediately after a write-through
// must surface the failure rather than serve the pre-write value that
// is still sitting in the stale-on-error window.
func TestChaosStaleOnErrorRefusesAfterWrite(t *testing.T) {
	h := newChaosHarness(t, faultify.Config{}, time.Millisecond, time.Minute)
	ctx := context.Background()

	if _, err := h.put.Invoke(ctx, googleapi.PutItemParams("y", "1")...); err != nil {
		t.Fatal(err)
	}
	if res, err := h.get.Invoke(ctx, googleapi.GetItemParams("y")...); err != nil || res != "1" {
		t.Fatalf("warm read: %v %v", res, err)
	}
	time.Sleep(5 * time.Millisecond) // expire into the grace window

	// Sanity: with no write, the outage is masked by degraded serving.
	h.fault.SetScript([]faultify.Outcome{faultify.Fail})
	ictx, err := h.get.InvokeContext(ctx, googleapi.GetItemParams("y")...)
	if err != nil || !ictx.ServedStale || ictx.Result != "1" {
		t.Fatalf("pre-write degraded serve: err=%v stale=%v res=%v", err, ictx.ServedStale, ictx.Result)
	}

	// Write through, then fail the backend again: the error must
	// surface, because the only stale entry provably predates the write.
	if _, err := h.put.Invoke(ctx, googleapi.PutItemParams("y", "2")...); err != nil {
		t.Fatal(err)
	}
	h.fault.SetScript([]faultify.Outcome{faultify.Fail, faultify.Fail, faultify.Fail})
	ictx, err = h.get.InvokeContext(ctx, googleapi.GetItemParams("y")...)
	if err == nil {
		t.Fatalf("post-write outage served %v (stale=%v), want an error", ictx.Result, ictx.ServedStale)
	}
	if !errors.Is(err, faultify.ErrInjected) {
		// A SOAP fault here would mean the dispatcher answered; the
		// injected failure must be what surfaces.
		var f *soap.Fault
		if errors.As(err, &f) {
			t.Fatalf("backend answered with a fault: %v", err)
		}
	}
	h.fault.SetScript(nil)
	if res, err := h.get.Invoke(ctx, googleapi.GetItemParams("y")...); err != nil || res != "2" {
		t.Fatalf("recovered read: %v %v", res, err)
	}
}
