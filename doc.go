// Package repro reproduces "Efficient Web Services Response Caching by
// Selecting Optimal Data Representation" (Takase & Tatsubori, ICDCS
// 2004) as a complete Go system: a from-scratch XML/SAX/DOM stack, a
// SOAP 1.1 rpc/encoded codec driven by WSDL-derived type metadata,
// Axis-style client middleware, and the paper's response cache with
// selectable key and value representations.
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for the
// paper-vs-measured results, and the examples/ directory for runnable
// entry points. The repository-level benchmarks in bench_test.go
// regenerate each of the paper's tables and figures:
//
//	go test -bench 'BenchmarkTable6' -benchmem
//	go test -bench 'BenchmarkFigure3' -benchtime 1x
package repro
