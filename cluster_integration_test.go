// Whole-stack integration tests for the shared L2 tier: two caching
// client stacks ("processes") sharing one wscached-style daemon, over
// real loopback TCP, exercising the acceptance claims of DESIGN.md
// §5h — a response cached by one process is served to another from the
// daemon without touching the origin, and an epoch bump committed by
// one process stales the other's L1 on its next daemon contact. Run
// with -race; the protocol client, the daemon, and both caches are
// concurrent.
package repro_test

import (
	"context"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/googleapi"
	"repro/internal/invalidate"
	"repro/internal/loadgen"
	"repro/internal/rep"
	"repro/internal/soap"
	"repro/internal/tier"
	"repro/internal/transport"
)

// clusterDaemon is an in-test wscached: a core.Cache holding wire
// entries behind a cluster.Server, bindable to a fixed address so a
// restart can reuse it.
type clusterDaemon struct {
	srv  *cluster.Server
	addr string
	stop func()
}

// startClusterDaemon boots a daemon the way cmd/wscached does. addr ""
// picks a free loopback port; a restart passes the previous address
// back in.
func startClusterDaemon(t testing.TB, addr string) *clusterDaemon {
	t.Helper()
	dinv := invalidate.New(nil, nil)
	cache := core.MustNew(core.Config{
		KeyGen:      rep.NewStringKey(),
		Store:       rep.NewCloneCopyStore(),
		DefaultTTL:  time.Hour,
		Invalidator: dinv,
	})
	srv, err := cluster.NewServer(cluster.ServerConfig{Tier: cache, Inv: dinv})
	if err != nil {
		t.Fatal(err)
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var lis net.Listener
	// A restart rebinds the address the old incarnation just released;
	// give the kernel a moment to finish tearing it down.
	for i := 0; ; i++ {
		lis, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if i >= 50 {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(context.Background(), lis) }()
	var once sync.Once
	d := &clusterDaemon{srv: srv, addr: lis.Addr().String()}
	d.stop = func() {
		once.Do(func() {
			srv.Close()
			if err := <-done; err != nil {
				t.Errorf("daemon Serve: %v", err)
			}
		})
	}
	t.Cleanup(d.stop)
	return d
}

// clusterProcess is one simulated client process: its own invalidator,
// L1 cache, and protocol client, sharing the backend and the daemon
// with its peers.
type clusterProcess struct {
	cache *core.Cache
	get   *client.Call
	put   *client.Call
}

func newClusterProcess(t testing.TB, tr transport.Transport, codec *soap.Codec, daemonAddr string) *clusterProcess {
	t.Helper()
	inv := invalidate.New(googleapi.ItemGraph(), nil)
	remote, err := cluster.New(cluster.Config{
		Addrs:       []string{daemonAddr},
		Inv:         inv,
		BaseContext: context.Background(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { remote.Close() })
	cache := core.MustNew(core.Config{
		KeyGen:      rep.NewStringKey(),
		Rep:         rep.NewRegistry(codec.Registry(), codec),
		DefaultTTL:  time.Hour,
		Invalidator: inv,
		Tiers:       []tier.Tier{remote},
		Policy: core.Policy{
			DefaultExplicit: true,
			Operations: map[string]core.OperationPolicy{
				googleapi.OpGetItem: {Cacheable: true},
			},
		},
	})
	mkCall := func(op string) *client.Call {
		return client.NewCall(codec, tr, googleapi.Endpoint, googleapi.Namespace,
			op, "urn:GoogleSearchAction",
			client.Options{RecordEvents: true, Handlers: []client.Handler{cache}})
	}
	return &clusterProcess{
		cache: cache,
		get:   mkCall(googleapi.OpGetItem),
		put:   mkCall(googleapi.OpPutItem),
	}
}

// countingTransport counts invocations that reach the origin.
type countingTransport struct {
	inner transport.Transport
	n     atomic.Int64
}

func (c *countingTransport) Send(ctx context.Context, req *transport.Request) (*transport.Response, error) {
	c.n.Add(1)
	return c.inner.Send(ctx, req)
}

// TestIntegrationClusterSharedTier is the acceptance test: a cross-
// process L2 hit, and cross-process L1 invalidation via the epoch
// protocol.
func TestIntegrationClusterSharedTier(t *testing.T) {
	disp, codec, err := googleapi.NewDispatcher()
	if err != nil {
		t.Fatal(err)
	}
	googleapi.NewItemStore().Register(disp)
	origin := &countingTransport{inner: &transport.InProcess{Handler: disp}}
	daemon := startClusterDaemon(t, "")

	procA := newClusterProcess(t, origin, codec, daemon.addr)
	procB := newClusterProcess(t, origin, codec, daemon.addr)
	ctx := context.Background()

	// Seed the item through A (writes bypass the cache and bump epochs).
	if _, err := procA.put.Invoke(ctx, googleapi.PutItemParams("x", "1")...); err != nil {
		t.Fatal(err)
	}
	originAfterSeed := origin.n.Load()

	// A's first read misses everywhere and fills both its L1 and the
	// shared daemon.
	ictx, err := procA.get.InvokeContext(ctx, googleapi.GetItemParams("x")...)
	if err != nil {
		t.Fatal(err)
	}
	if ictx.CacheHit || ictx.Result != "1" {
		t.Fatalf("A first read: hit=%v res=%v, want miss of 1", ictx.CacheHit, ictx.Result)
	}
	if got := origin.n.Load(); got != originAfterSeed+1 {
		t.Fatalf("origin calls after A's miss = %d, want %d", got, originAfterSeed+1)
	}

	// B has never seen the key: its read must be served from the shared
	// daemon — a cross-process hit, no origin contact.
	ictx, err = procB.get.InvokeContext(ctx, googleapi.GetItemParams("x")...)
	if err != nil {
		t.Fatal(err)
	}
	if !ictx.CacheHit || ictx.Result != "1" {
		t.Fatalf("B first read: hit=%v res=%v, want an L2 hit of 1", ictx.CacheHit, ictx.Result)
	}
	if got := origin.n.Load(); got != originAfterSeed+1 {
		t.Fatalf("origin calls after B's L2 hit = %d, want %d (B must not invoke the origin)", got, originAfterSeed+1)
	}
	if s := procB.cache.Stats(); s.TierHits == 0 {
		t.Fatalf("B's cache recorded no tier hit: %+v", s)
	}

	// B's next read of the same key is a plain L1 hit — still no origin.
	if res, err := procB.get.Invoke(ctx, googleapi.GetItemParams("x")...); err != nil || res != "1" {
		t.Fatalf("B L1 read: %v %v", res, err)
	}
	if got := origin.n.Load(); got != originAfterSeed+1 {
		t.Fatalf("origin calls after B's L1 hit = %d, want %d", got, originAfterSeed+1)
	}

	// A writes. The epoch bump reaches the daemon before the put
	// returns; B's L1 still holds the old value under its old stamps.
	if _, err := procA.put.Invoke(ctx, googleapi.PutItemParams("x", "2")...); err != nil {
		t.Fatal(err)
	}

	// Any daemon contact at all synchronizes B — here, a read of an
	// unrelated cold key. The sync applies the bumped epochs to B's
	// invalidator, staling its L1 entry for "x".
	if _, err := procB.get.Invoke(ctx, googleapi.GetItemParams("unrelated")...); err != nil {
		t.Fatal(err)
	}

	// B's next read of "x" must not serve its L1 copy (stale) nor the
	// daemon's (refused by the daemon's own stamp check): it refetches
	// the post-write value from the origin.
	before := origin.n.Load()
	ictx, err = procB.get.InvokeContext(ctx, googleapi.GetItemParams("x")...)
	if err != nil {
		t.Fatal(err)
	}
	if ictx.CacheHit || ictx.Result != "2" {
		t.Fatalf("B post-write read: hit=%v res=%v, want a miss serving 2", ictx.CacheHit, ictx.Result)
	}
	if got := origin.n.Load(); got != before+1 {
		t.Fatalf("origin calls for B's post-write read = %d, want %d", got, before+1)
	}
}

// TestChaosClusterDaemonRestart extends the chaos suite across the
// wire: a mixed read/write load through an L1+L2 stack while the
// shared daemon is killed and rebooted mid-load. The restart drops
// every entry and epoch the daemon held; the client must detect the
// new incarnation (boot ID) and invalidate its L1 rather than trust
// stamps minted under the old one. The oracle is the same
// stale-after-write floor as TestChaosNoStaleAfterWrite; the daemon
// outage itself must stay invisible (tier errors are soft misses).
func TestChaosClusterDaemonRestart(t *testing.T) {
	disp, codec, err := googleapi.NewDispatcher()
	if err != nil {
		t.Fatal(err)
	}
	googleapi.NewItemStore().Register(disp)
	disp.SetValidatorPolicy(time.Now().Add(-time.Hour), time.Hour) // lying 304s, as in the base chaos run

	daemon := startClusterDaemon(t, "")
	origin := &countingTransport{inner: &transport.InProcess{Handler: disp}}
	proc := newClusterProcess(t, origin, codec, daemon.addr)

	const hotKeys = 4
	hot := make([]string, hotKeys)
	for i := range hot {
		hot[i] = fmt.Sprintf("k%d", i)
	}
	var (
		writeMu    [hotKeys]sync.Mutex
		attempted  [hotKeys]atomic.Int64
		committed  [hotKeys]atomic.Int64
		violations atomic.Int64
	)
	keyIndex := func(q string) int {
		if len(q) < 2 || q[0] != 'k' {
			return -1
		}
		n, err := strconv.Atoi(q[1:])
		if err != nil || n < 0 || n >= hotKeys {
			return -1
		}
		return n
	}

	// Kill and reboot the daemon mid-load, twice, on the same address.
	stopChurn := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		current := daemon
		for i := 0; i < 2; i++ {
			select {
			case <-stopChurn:
				return
			case <-time.After(50 * time.Millisecond):
			}
			current.stop()
			current = startClusterDaemon(t, current.addr)
		}
	}()

	ctx := context.Background()
	res, err := loadgen.RunContext(ctx, loadgen.Config{
		Concurrency: 8,
		Requests:    1500,
		HitRatio:    0.5,
		WriteRatio:  0.2,
		HotQueries:  hot,
		MissQuery:   func(i int) string { return fmt.Sprintf("cold-%d", i) },
		Do: func(q string) error {
			k := keyIndex(q)
			var floor int64
			if k >= 0 {
				floor = committed[k].Load()
			}
			ictx, err := proc.get.InvokeContext(ctx, googleapi.GetItemParams(q)...)
			if err != nil {
				return err
			}
			if k < 0 {
				return nil
			}
			if got := parseChaosValue(ictx.Result); got < floor {
				violations.Add(1)
				return fmt.Errorf("stale-after-write: key %s read %d, floor %d", q, got, floor)
			}
			return nil
		},
		Write: func(q string) error {
			k := keyIndex(q)
			writeMu[k].Lock()
			defer writeMu[k].Unlock()
			v := attempted[k].Load() + 1
			attempted[k].Store(v)
			_, err := proc.put.Invoke(ctx, googleapi.PutItemParams(q, strconv.FormatInt(v, 10))...)
			if err == nil {
				committed[k].Store(v)
			}
			return err
		},
		Classify: func(err error) string { return "error" },
	})
	close(stopChurn)
	churn.Wait()
	if err != nil {
		t.Fatal(err)
	}

	stats := proc.cache.Stats()
	t.Logf("cluster chaos run: %v; origin calls %d; hits=%d misses=%d tierHits=%d tierErrors=%d invalidations=%d",
		res, origin.n.Load(), stats.Hits, stats.Misses, stats.TierHits, stats.TierErrors, stats.Invalidations)
	if n := violations.Load(); n != 0 {
		t.Fatalf("%d stale-after-write violations across daemon restarts", n)
	}
	if res.Classes["error"] != 0 {
		// Nothing injects faults at the transport; any surfaced error
		// means a daemon outage leaked through the fail-soft tier path.
		t.Fatalf("load surfaced %d errors; daemon restarts must be invisible", res.Classes["error"])
	}
	if res.Writes == 0 {
		t.Error("chaos run issued no writes")
	}
}
